package scenario

// The testbed backend: executes scenarios on the sharded discrete-event
// network kernel (package simnet) with the protocol substrate the config
// names — plain source routes, onion layers, Crowds coin-flips, or
// threshold-mix batching — and measures the anonymity degree empirically
// by running the adversary's inference over the collected tuples.
//
// With Workload.Rounds > 1 every scenario becomes a set of persistent
// sender→receiver sessions: each session's initiator stays fixed while its
// path re-forms every round, and the adversary accumulates across the
// session's messages — Bayesian posterior multiplication (the
// generalized intersection attack: witnessed identities are zeroed, so
// candidate sets shrink round over round) on the routed substrates, and
// Reiter–Rubin predecessor counting on Crowds.

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"anonmix/internal/adversary"
	"anonmix/internal/crowds"
	"anonmix/internal/entropy"
	"anonmix/internal/events"
	"anonmix/internal/onion"
	"anonmix/internal/pathsel"
	"anonmix/internal/scenario/capability"
	"anonmix/internal/simnet"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// defaultMixBatch is the threshold-mix batch size when ProtocolMix is
// selected without an explicit Workload.BatchThreshold.
const defaultMixBatch = 8

// settleTimeout bounds how long a testbed run may take to drain.
const settleTimeout = 5 * time.Minute

type testbedBackend struct{}

func (testbedBackend) Kind() BackendKind { return BackendTestbed }

func (testbedBackend) Run(cfg Config) (Result, error) {
	if cfg.Protocol == ProtocolCrowds {
		if len(cfg.phases) > 0 {
			// The jondo substrate's predecessor statistics assume a fixed
			// crowd; dynamic membership needs the per-epoch closed forms
			// first (see ROADMAP).
			return Result{}, capability.Unsupported(string(BackendTestbed),
				capability.ErrProtocol, "crowds substrate does not support dynamic populations yet")
		}
		return runCrowds(cfg)
	}
	if cfg.Strategy.Kind != pathsel.Simple {
		return Result{}, capability.Unsupported(string(BackendTestbed),
			capability.ErrComplicatedPaths, cfg.Strategy.Name+" (run it on the crowds substrate)")
	}
	if len(cfg.phases) > 0 {
		return runRoutedTimeline(cfg)
	}
	if cfg.Faults != nil {
		return runRoutedFaulty(cfg)
	}
	return runRouted(cfg)
}

// runRouted executes the source-routed substrates (plain, onion, mix):
// paths come from the strategy's selector, the network carries them, and
// the adversary's empirical mean posterior entropy is the measured H*(S).
// With Rounds > 1 each of the Workload.Messages sessions injects one
// message per round from its fixed sender.
func runRouted(cfg Config) (Result, error) {
	engine, err := Engine(cfg.N, len(cfg.Adversary.Compromised), engineOptions(cfg)...)
	if err != nil {
		return Result{}, err
	}
	if engine.Mode() != events.InferenceStandard {
		return Result{}, capability.Unsupported(string(BackendTestbed),
			capability.ErrInference, engine.Mode().String())
	}
	if !engine.SenderSelfReport() {
		// The empirical pipeline hardcodes the local-eavesdropper branch
		// (a compromised sender is identified outright); running the
		// no-self-report ablation here would silently bias H low.
		return Result{}, capability.Unsupported(string(BackendTestbed),
			capability.ErrInference, "no-sender-self-report ablation is exact-only")
	}
	// The config arrives normalized from Run, and the engine is already in
	// hand — build the analyst directly.
	analyst, err := adversary.NewAnalyst(engine, cfg.Strategy.Length, cfg.Adversary.Compromised)
	if err != nil {
		return Result{}, err
	}
	sel, err := pathsel.NewSelector(cfg.N, cfg.Strategy)
	if err != nil {
		return Result{}, err
	}

	nwCfg := simnet.Config{
		N:           cfg.N,
		Compromised: cfg.Adversary.Compromised,
		Seed:        cfg.Workload.Seed,
		MaxHopDelay: cfg.Workload.MaxHopDelay,
	}
	var ring *onion.KeyRing
	if cfg.Protocol == ProtocolOnion {
		var secret [8]byte
		binary.LittleEndian.PutUint64(secret[:], uint64(cfg.Workload.Seed)+0x517cc1b727220a95)
		ring, err = onion.NewKeyRing(secret[:], cfg.N)
		if err != nil {
			return Result{}, err
		}
		fwd, err := onion.NewForwarder(ring)
		if err != nil {
			return Result{}, err
		}
		nwCfg.Forwarder = fwd
	}
	if cfg.Protocol == ProtocolMix {
		nwCfg.BatchThreshold = cfg.Workload.BatchThreshold
		if nwCfg.BatchThreshold < 2 {
			nwCfg.BatchThreshold = defaultMixBatch
		}
		// Batch composition follows arrival order, which is scheduling-
		// dependent across shards; one shard keeps mix scenarios
		// bit-reproducible for a fixed seed (plain/onion runs stay
		// parallel — their analysis is order-independent).
		nwCfg.Shards = 1
	}
	baseGoroutines := runtime.NumGoroutine()
	nw, err := simnet.New(nwCfg)
	if err != nil {
		return Result{}, err
	}
	nw.Start()
	defer nw.Close()

	sessions := cfg.Workload.Messages
	rounds := cfg.Workload.Rounds

	start := time.Now() //anonlint:allow detrand(wall-clock metrics only, never flows into Result)
	// Each session draws from its own counter-based stream — the same
	// streams the Monte-Carlo estimator consumes per trial, so backend
	// agreement is draw-for-draw, not just statistical. The sampler's path
	// buffer is reused across injections: SendRoute copies the route and
	// onion.Build consumes it synchronously.
	sp, err := sel.NewSampler()
	if err != nil {
		return Result{}, err
	}
	senders := make([]trace.NodeID, sessions)
	ids := make([]trace.MessageID, sessions*rounds)
	for s := 0; s < sessions; s++ {
		// Cancellation checkpoints ride the same 64-session granule as the
		// sampling backends' batch loops; a canceled run abandons the
		// kernel mid-traffic and the deferred Close tears it down.
		if s%sessionBatchSize == 0 {
			if err := cfg.checkCanceled(); err != nil {
				return Result{}, err
			}
		}
		rng := stats.NewStream(cfg.Workload.Seed, int64(s))
		sender := cfg.Workload.Sender
		if !cfg.Workload.FixedSender {
			sender = trace.NodeID(rng.Intn(cfg.N))
		}
		senders[s] = sender
		for r := 0; r < rounds; r++ {
			path, err := sp.SelectPath(&rng, sender)
			if err != nil {
				return Result{}, err
			}
			var id trace.MessageID
			if cfg.Protocol == ProtocolOnion && len(path) > 0 {
				blob, err := onion.Build(ring, path, nil, cryptorand.Reader)
				if err != nil {
					return Result{}, err
				}
				id, err = nw.Inject(sender, path[0], simnet.Packet{Onion: blob})
				if err != nil {
					return Result{}, err
				}
			} else {
				id, err = nw.SendRoute(sender, path, nil)
				if err != nil {
					return Result{}, err
				}
			}
			ids[s*rounds+r] = id
		}
	}
	goroutines := max(runtime.NumGoroutine()-baseGoroutines, 0)
	if err := nw.WaitSettled(settleTimeout); err != nil {
		return Result{}, err
	}
	elapsed := time.Since(start)
	if drops := nw.Dropped(); len(drops) > 0 {
		return Result{}, fmt.Errorf("scenario: testbed dropped %d packets: %w", len(drops), drops[0])
	}

	traces := trace.Collate(nw.Tuples())
	res, err := analyzeRouted(cfg, analyst, traces, senders, ids)
	if err != nil {
		return Result{}, err
	}
	res.MaxH = entropy.Max(cfg.N)
	res.Normalized = entropy.Normalized(res.H, cfg.N)
	res.Kernel = kernelStats(nw, goroutines, elapsed)
	return res, nil
}

// analyzeRouted runs the adversary over the collected traces, session by
// session in injection order — a fixed order, so the empirical estimate is
// bit-reproducible for a fixed seed (ranging over the collated map would
// reassociate the floating-point mean run to run). Single-shot sessions
// use the O(reports) entropy fast path; multi-round sessions accumulate
// full posteriors, which costs O(N) per message.
func analyzeRouted(cfg Config, analyst *adversary.Analyst,
	traces map[trace.MessageID]*trace.MessageTrace, senders []trace.NodeID,
	ids []trace.MessageID) (Result, error) {
	sessions := len(senders)
	rounds := cfg.Workload.Rounds
	conf := cfg.Workload.Confidence
	degradation := cfg.Workload.degradation()

	var sum stats.Summary
	var compSenders, deanonymized, idCount, idRounds int
	var hSums []float64
	var sc adversary.Scratch
	var acc *adversary.Accumulator
	if degradation {
		hSums = make([]float64, rounds)
		var err error
		if acc, err = adversary.NewAccumulator(analyst); err != nil {
			return Result{}, err
		}
	}
	for s := 0; s < sessions; s++ {
		sender := senders[s]
		if analyst.Compromised(sender) {
			// Local-eavesdropper branch: the adversary's agent at the
			// sender identifies it outright at its first message.
			sum.Add(0)
			compSenders++
			deanonymized++
			if conf > 0 {
				idCount++
				idRounds++
			}
			continue
		}
		if !degradation {
			mt := traces[ids[s]]
			if mt == nil {
				return Result{}, fmt.Errorf("scenario: message %d has no trace", ids[s])
			}
			h, err := analyst.EntropyScratch(mt, &sc)
			if err != nil {
				return Result{}, fmt.Errorf("scenario: message %d: %w", ids[s], err)
			}
			if h < 1e-9 {
				deanonymized++
			}
			sum.Add(h)
			continue
		}
		acc.Reset()
		identifiedAt := 0
		final := 0.0
		for r := 0; r < rounds; r++ {
			id := ids[s*rounds+r]
			mt := traces[id]
			if mt == nil {
				return Result{}, fmt.Errorf("scenario: message %d has no trace", id)
			}
			if err := acc.ObserveScratch(mt, &sc); err != nil {
				return Result{}, fmt.Errorf("scenario: message %d: %w", id, err)
			}
			h, top, mass, err := acc.SnapshotFast()
			if err != nil {
				return Result{}, fmt.Errorf("scenario: message %d: %w", id, err)
			}
			hSums[r] += h
			final = h
			if identifiedAt == 0 && conf > 0 && top == sender && mass >= conf {
				identifiedAt = r + 1
			}
		}
		sum.Add(final)
		if final < 1e-9 {
			deanonymized++
		}
		if identifiedAt > 0 {
			idCount++
			idRounds += identifiedAt
		}
	}
	if sum.N() != sessions {
		return Result{}, fmt.Errorf("scenario: analyzed %d of %d sessions", sum.N(), sessions)
	}
	for r := range hSums {
		hSums[r] /= float64(sessions)
	}
	res := Result{
		H:                      sum.Mean(),
		StdErr:                 sum.StdErr(),
		CI95:                   sum.CI95(),
		Estimated:              true,
		Trials:                 sum.N(),
		CompromisedSenderShare: float64(compSenders) / float64(sum.N()),
		Deanonymized:           deanonymized,
		HRounds:                hSums,
	}
	if conf > 0 {
		res.IdentifiedShare = float64(idCount) / float64(sessions)
		if idCount > 0 {
			res.MeanRoundsToIdentify = float64(idRounds) / float64(idCount)
		}
	}
	return res, nil
}

// runRoutedTimeline executes a dynamic-population scenario on the routed
// substrates. The membership schedule becomes kernel-level churn events at
// precomputed virtual timestamps: each phase gets a disjoint logical-time
// window wide enough for its traffic (injection count plus the worst-case
// path depth), the kernel's per-(node,time) state machine applies the
// joins/leaves/compromises on the boundaries, and path selection draws
// from the phase's live membership only. Between phases the network
// settles (flushing partial threshold-mix batches — the mix "fires on
// timeout" at the phase end) and the injection clock advances past the
// boundary, so every message's observations fall entirely inside one
// phase and are analyzed with that phase's adversary.
func runRoutedTimeline(cfg Config) (Result, error) {
	analysts, sels, err := phasedMachinery(cfg, string(BackendTestbed))
	if err != nil {
		return Result{}, err
	}
	phases := cfg.phases
	totalIDs := unionSize(cfg.N, cfg.Timeline)
	rounds := timelineRounds(phases)
	sessions := cfg.Workload.Messages

	// Phase windows: wide enough that every event of phase e has a logical
	// time below T[e+1] (injections advance the clock by one each; every
	// hop, mix release included, adds at most 1+jitter ticks over the
	// phase's running maximum — fault-plan jitter and the retransmit
	// backoff budget included, see phaseSpan — and a path has at most hi+2
	// such steps).
	span := func(m int) uint64 { return phaseSpan(&cfg, m) }
	T := make([]uint64, len(phases)+1)
	for e := range phases {
		m := phases[e].epoch.Messages
		if rounds {
			m = sessions * phases[e].epoch.Rounds
		}
		T[e+1] = T[e] + span(m)
	}

	// The kernel's churn schedule is the phase-to-phase membership diff,
	// ordered join → recover → compromise → leave per boundary so the
	// kernel's per-node state machine sees only legal transitions.
	p0 := &phases[0]
	var down []trace.NodeID
	for g := 0; g < totalIDs; g++ {
		if _, live := p0.denseOf[trace.NodeID(g)]; !live {
			down = append(down, trace.NodeID(g))
		}
	}
	var churn []simnet.ChurnEvent
	for e := 1; e < len(phases); e++ {
		prev, cur := &phases[e-1], &phases[e]
		at := T[e]
		for _, g := range cur.live {
			if _, was := prev.denseOf[g]; !was {
				churn = append(churn, simnet.ChurnEvent{Time: at, Kind: simnet.ChurnJoin, Node: g})
			}
		}
		for _, g := range prev.comp {
			if !cur.compSet[g] {
				churn = append(churn, simnet.ChurnEvent{Time: at, Kind: simnet.ChurnRecover, Node: g})
			}
		}
		for _, g := range cur.comp {
			if !prev.compSet[g] {
				churn = append(churn, simnet.ChurnEvent{Time: at, Kind: simnet.ChurnCompromise, Node: g})
			}
		}
		for _, g := range prev.live {
			if _, still := cur.denseOf[g]; !still {
				churn = append(churn, simnet.ChurnEvent{Time: at, Kind: simnet.ChurnLeave, Node: g})
			}
		}
	}

	nwCfg := simnet.Config{
		N:           totalIDs,
		Compromised: p0.comp,
		Down:        down,
		Churn:       churn,
		Seed:        cfg.Workload.Seed,
		MaxHopDelay: cfg.Workload.MaxHopDelay,
	}
	faultNetConfig(&nwCfg, &cfg)
	var ring *onion.KeyRing
	if cfg.Protocol == ProtocolOnion {
		var secret [8]byte
		binary.LittleEndian.PutUint64(secret[:], uint64(cfg.Workload.Seed)+0x517cc1b727220a95)
		if ring, err = onion.NewKeyRing(secret[:], totalIDs); err != nil {
			return Result{}, err
		}
		fwd, err := onion.NewForwarder(ring)
		if err != nil {
			return Result{}, err
		}
		nwCfg.Forwarder = fwd
	}
	if cfg.Protocol == ProtocolMix {
		nwCfg.BatchThreshold = cfg.Workload.BatchThreshold
		if nwCfg.BatchThreshold < 2 {
			nwCfg.BatchThreshold = defaultMixBatch
		}
		nwCfg.Shards = 1 // bit-reproducible batch composition (see runRouted)
	}
	baseGoroutines := runtime.NumGoroutine()
	nw, err := simnet.New(nwCfg)
	if err != nil {
		return Result{}, err
	}
	nw.Start()
	defer nw.Close()

	start := time.Now() //anonlint:allow detrand(wall-clock metrics only, never flows into Result)
	// Per-phase samplers over the dense spaces; drawPhasePath maps the
	// reusable dense buffer to a fresh union-identity route.
	samplers := make([]*pathsel.Sampler, len(sels))
	for i := range sels {
		if samplers[i], err = sels[i].NewSampler(); err != nil {
			return Result{}, err
		}
	}
	inject := func(e int, rng *stats.Stream, sender trace.NodeID) (trace.MessageID, error) {
		path, err := drawPhasePath(&phases[e], samplers[e], rng, sender)
		if err != nil {
			return 0, err
		}
		if cfg.Protocol == ProtocolOnion && len(path) > 0 {
			blob, err := onion.Build(ring, path, nil, cryptorand.Reader)
			if err != nil {
				return 0, err
			}
			return nw.Inject(sender, path[0], simnet.Packet{Onion: blob})
		}
		return nw.SendRoute(sender, path, nil)
	}

	var (
		k             = cfg.Workload.Rounds
		senders       []trace.NodeID    // rounds mode: one per session
		strs          []stats.Stream    // rounds mode: one per session
		ids           []trace.MessageID // rounds mode: session-major [s*k+r]
		phaseSenders  [][]trace.NodeID  // messages mode
		phaseIDs      [][]trace.MessageID
		maxGoroutines int
	)
	if rounds {
		// One counter-based stream per session — the same streams the
		// Monte-Carlo timeline consumes — so every session's sender and
		// path draws are independent of the phase-major injection order.
		senders = make([]trace.NodeID, sessions)
		strs = make([]stats.Stream, sessions)
		ids = make([]trace.MessageID, sessions*k)
		pool := senderPool(phases)
		for s := range senders {
			strs[s] = stats.NewStream(cfg.Workload.Seed, int64(s))
			if cfg.Workload.FixedSender {
				senders[s] = cfg.Workload.Sender
			} else {
				senders[s] = pool[strs[s].Intn(len(pool))]
			}
		}
	} else {
		phaseSenders = make([][]trace.NodeID, len(phases))
		phaseIDs = make([][]trace.MessageID, len(phases))
	}
	r := 0
	for e := range phases {
		p := &phases[e]
		if e > 0 {
			nw.AdvanceTime(T[e])
		}
		if rounds {
			for j := 0; j < p.epoch.Rounds; j++ {
				// One checkpoint per round wave (sessions injections).
				if err := cfg.checkCanceled(); err != nil {
					return Result{}, err
				}
				for s := 0; s < sessions; s++ {
					id, err := inject(e, &strs[s], senders[s])
					if err != nil {
						return Result{}, err
					}
					ids[s*k+r] = id
				}
				r++
			}
		} else {
			for m := 0; m < p.epoch.Messages; m++ {
				if m%sessionBatchSize == 0 {
					if err := cfg.checkCanceled(); err != nil {
						return Result{}, err
					}
				}
				// Messages mode: each message draws from its own stream
				// under the phase's derived seed, matching the per-phase
				// sub-runs of the Monte-Carlo timeline.
				rng := stats.NewStream(phaseSeed(cfg.Workload.Seed, e), int64(m))
				sender := cfg.Workload.Sender
				if !cfg.Workload.FixedSender {
					sender = p.live[rng.Intn(p.n())]
				}
				id, err := inject(e, &rng, sender)
				if err != nil {
					return Result{}, err
				}
				phaseSenders[e] = append(phaseSenders[e], sender)
				phaseIDs[e] = append(phaseIDs[e], id)
			}
		}
		maxGoroutines = max(maxGoroutines, runtime.NumGoroutine()-baseGoroutines)
		if err := nw.Settle(settleTimeout); err != nil {
			return Result{}, err
		}
	}
	elapsed := time.Since(start)
	var fa *faultAnalysis
	if cfg.Faults == nil {
		if drops := nw.Dropped(); len(drops) > 0 {
			return Result{}, fmt.Errorf("scenario: testbed dropped %d packets: %w", len(drops), drops[0])
		}
	} else {
		// Loss and crash drops are the configured fault process; anything
		// else is still a defect.
		if err := checkUnexpectedDrops(nw); err != nil {
			return Result{}, err
		}
		if fa, err = newTimelineFaultAnalysis(cfg, nw); err != nil {
			return Result{}, err
		}
	}
	traces := trace.Collate(nw.Tuples())

	maxH := timelineMaxH(phases)
	var res Result
	if rounds {
		res, err = analyzeRoutedTimeline(cfg, analysts, traces, senders, ids)
	} else {
		res, err = analyzeSingleShotTimeline(cfg, analysts, traces, phaseSenders, phaseIDs, fa)
	}
	if err != nil {
		return Result{}, err
	}
	res.MaxH = maxH
	res.Normalized = res.H / maxH
	res.Kernel = kernelStats(nw, max(maxGoroutines, 0), elapsed)
	return res, nil
}

// analyzeSingleShotTimeline measures a Messages timeline: every phase's
// traffic is analyzed with that phase's adversary in its dense space, in
// injection order for bit-reproducibility, and the phases blend into the
// pooled empirical mean. A non-nil faultAnalysis restricts H to delivered
// messages and folds the retransmission evidence into HDegraded, exactly
// as the static faulted path does (see runRoutedFaulty).
func analyzeSingleShotTimeline(cfg Config, analysts []*adversary.Analyst,
	traces map[trace.MessageID]*trace.MessageTrace,
	phaseSenders [][]trace.NodeID, phaseIDs [][]trace.MessageID,
	fa *faultAnalysis) (Result, error) {
	var (
		sum, sumDeg  stats.Summary
		injected     int
		compSenders  int
		deanonymized int
		epochs       []EpochResult
		sc           adversary.Scratch
		partials     []*trace.MessageTrace
	)
	for e := range cfg.phases {
		p := &cfg.phases[e]
		var pSum stats.Summary
		var acc *adversary.Accumulator
		if fa != nil {
			var err error
			if acc, err = adversary.NewAccumulator(analysts[e]); err != nil {
				return Result{}, err
			}
		}
		for m, sender := range phaseSenders[e] {
			injected++
			id := phaseIDs[e][m]
			if fa != nil && !fa.delivered[id] {
				continue // undelivered: excluded from H, counted in delivery stats
			}
			if p.compSet[sender] {
				sum.Add(0)
				pSum.Add(0)
				sumDeg.Add(0)
				compSenders++
				deanonymized++
				continue
			}
			mt := traces[id]
			if mt == nil {
				return Result{}, fmt.Errorf("scenario: message %d has no trace", id)
			}
			dmt, err := p.denseTrace(mt)
			if err != nil {
				return Result{}, fmt.Errorf("scenario: message %d: %w", id, err)
			}
			h, err := analysts[e].EntropyScratch(dmt, &sc)
			if err != nil {
				return Result{}, fmt.Errorf("scenario: message %d: %w", id, err)
			}
			if h < 1e-9 {
				deanonymized++
			}
			sum.Add(h)
			pSum.Add(h)
			if fa == nil {
				continue
			}
			// Degraded fold: each retransmission the kernel logged for this
			// message leaked the delivered trace's prefix up to the retrying
			// observer, analyzed in the phase's dense space.
			partials = partials[:0]
			for _, rt := range fa.retries[id] {
				do, ok := p.denseOf[rt.Observer]
				if !ok {
					continue
				}
				partials = append(partials, truncateAtObserver(dmt, trace.NodeID(do)))
			}
			if len(partials) == 0 {
				sumDeg.Add(h)
				continue
			}
			hd, err := foldDegraded(acc, fa.analystsU[e], dmt, partials, &sc)
			if err != nil {
				return Result{}, fmt.Errorf("scenario: message %d degraded fold: %w", id, err)
			}
			sumDeg.Add(hd)
		}
		er := EpochResult{Index: e, N: p.n(), C: p.c(), Messages: p.epoch.Messages}
		if pSum.N() > 0 {
			er.H = pSum.Mean()
		}
		epochs = append(epochs, er)
	}
	res := Result{
		Estimated:    true,
		Trials:       sum.N(),
		Deanonymized: deanonymized,
		Epochs:       epochs,
	}
	if sum.N() > 0 {
		res.H = sum.Mean()
		res.StdErr = sum.StdErr()
		res.CI95 = sum.CI95()
		res.CompromisedSenderShare = float64(compSenders) / float64(sum.N())
	}
	if fa != nil {
		res.DeliveryRate = float64(sum.N()) / float64(injected)
		res.MeanAttempts = fa.meanAttempts(injected)
		if sumDeg.N() > 0 {
			res.HDegraded = sumDeg.Mean()
		}
	}
	return res, nil
}

// analyzeRoutedTimeline folds a Rounds timeline's collected traces through
// the union-space accumulator, session by session in injection order — the
// empirical counterpart of runPhasedRounds.
func analyzeRoutedTimeline(cfg Config, analysts []*adversary.Analyst,
	traces map[trace.MessageID]*trace.MessageTrace,
	senders []trace.NodeID, ids []trace.MessageID) (Result, error) {
	var (
		phases     = cfg.phases
		totalIDs   = unionSize(cfg.N, cfg.Timeline)
		sessions   = len(senders)
		k          = cfg.Workload.Rounds
		conf       = cfg.Workload.Confidence
		first      = firstTrafficPhase(phases)
		sum        stats.Summary
		compSender int
		deanon     int
		idCount    int
		idRounds   int
		hRounds    = make([]float64, k)
	)
	pa, err := adversary.NewPhasedAccumulator(totalIDs)
	if err != nil {
		return Result{}, err
	}
	var sc adversary.Scratch
	entropies := make([]float64, k)
	s := 0
	draw := func(pi, r int) (*trace.MessageTrace, error) {
		id := ids[s*k+r]
		mt := traces[id]
		if mt == nil {
			return nil, fmt.Errorf("scenario: message %d has no trace", id)
		}
		return phases[pi].denseTrace(mt)
	}
	for s = 0; s < sessions; s++ {
		sender := senders[s]
		identifiedAt, err := phasedSession(phases, analysts, pa, &sc, entropies, sender, conf, draw)
		if err != nil {
			return Result{}, err
		}
		if phases[first].compSet[sender] {
			compSender++
		}
		for r, h := range entropies {
			hRounds[r] += h
		}
		final := entropies[k-1]
		sum.Add(final)
		if final < 1e-9 {
			deanon++
		}
		if identifiedAt > 0 {
			idCount++
			idRounds += identifiedAt
		}
	}
	for r := range hRounds {
		hRounds[r] /= float64(sessions)
	}
	res := Result{
		H:                      sum.Mean(),
		StdErr:                 sum.StdErr(),
		CI95:                   sum.CI95(),
		Estimated:              true,
		Trials:                 sessions,
		CompromisedSenderShare: float64(compSender) / float64(sessions),
		Deanonymized:           deanon,
		HRounds:                hRounds,
		Epochs:                 epochResults(phases, sessions, hRounds),
	}
	if conf > 0 {
		res.IdentifiedShare = float64(idCount) / float64(sessions)
		if idCount > 0 {
			res.MeanRoundsToIdentify = float64(idRounds) / float64(idCount)
		}
	}
	return res, nil
}

// runCrowds executes the coin-flip jondo substrate: routing is the
// protocol's own (no strategy selector), honest jondos originate, and the
// result carries the Reiter–Rubin predecessor statistics next to the
// posterior entropy of the observed event. With Rounds > 1 each session is
// one initiator re-forming its path every round while the collaborators
// count predecessors — the classical degradation attack on Crowds.
func runCrowds(cfg Config) (Result, error) {
	n, comp := cfg.N, cfg.Adversary.Compromised
	c := len(comp)
	pf := cfg.CrowdsPf
	theo, err := crowds.PredecessorProb(n, c, pf)
	if err != nil {
		return Result{}, fmt.Errorf("%w: crowds substrate: %w", ErrBadConfig, err)
	}
	nwCfg := simnet.Config{
		N:           n,
		Compromised: comp,
		Seed:        cfg.Workload.Seed,
		MaxHopDelay: cfg.Workload.MaxHopDelay,
	}
	// Degradation runs must be bit-reproducible for a fixed seed, but the
	// live Crowds forwarder draws its coin flips from one shared RNG in
	// event-processing order, which depends on shard scheduling. Multi-round
	// runs therefore materialize each path at injection time — the same
	// draws (first hop, then coin-flip continuations), made serially — and
	// ship it as an explicit route; single-shot runs keep the live
	// hop-by-hop forwarder, whose aggregate statistics don't depend on the
	// draw interleaving.
	var fwd *crowds.Forwarder
	materialize := cfg.Workload.degradation()
	var routeRng *rand.Rand
	if materialize {
		routeRng = stats.Fork(cfg.Workload.Seed, 1)
	} else {
		fwd, err = crowds.NewForwarder(n, pf, cfg.Workload.Seed)
		if err != nil {
			return Result{}, err
		}
		nwCfg.Forwarder = fwd
	}
	baseGoroutines := runtime.NumGoroutine()
	nw, err := simnet.New(nwCfg)
	if err != nil {
		return Result{}, err
	}
	nw.Start()
	defer nw.Close()

	compromised := make(map[trace.NodeID]bool, c)
	for _, id := range comp {
		compromised[id] = true
	}
	sessions := cfg.Workload.Messages
	rounds := cfg.Workload.Rounds
	start := time.Now() //anonlint:allow detrand(wall-clock metrics only, never flows into Result)
	rng := stats.NewRand(cfg.Workload.Seed)
	senders := make([]trace.NodeID, sessions)
	ids := make([]trace.MessageID, sessions*rounds)
	for s := 0; s < sessions; s++ {
		if s%sessionBatchSize == 0 {
			if err := cfg.checkCanceled(); err != nil {
				return Result{}, err
			}
		}
		// Honest initiators only: the predecessor analysis conditions on
		// an uncompromised originator.
		sender := cfg.Workload.Sender
		if !cfg.Workload.FixedSender {
			sender = trace.NodeID(rng.Intn(n))
			for compromised[sender] {
				sender = trace.NodeID(rng.Intn(n))
			}
		}
		senders[s] = sender
		for r := 0; r < rounds; r++ {
			var id trace.MessageID
			var err error
			if materialize {
				id, err = nw.SendRoute(sender, crowdsRoute(routeRng, n, pf), nil)
			} else {
				id, err = nw.Inject(sender, fwd.FirstHop(sender), simnet.Packet{})
			}
			if err != nil {
				return Result{}, err
			}
			ids[s*rounds+r] = id
		}
	}
	goroutines := max(runtime.NumGoroutine()-baseGoroutines, 0)
	if err := nw.WaitSettled(settleTimeout); err != nil {
		return Result{}, err
	}
	elapsed := time.Since(start)

	// The predecessor-count likelihood ratio: per observed round the
	// initiator appears as the first collaborator's predecessor at rate
	// p1 = P(H1|H1+) while any other honest jondo appears at rate
	// q = (1−p1)/(n−c−1), so after counts m_v the posterior over honest
	// jondos is ∝ (p1/q)^{m_v}. Unobserved rounds are uninformative (the
	// observation event is initiator-independent).
	honest := n - c
	var logRatio float64 // ln(p1/q)
	if honest > 1 {
		logRatio = math.Log(theo * float64(honest-1) / (1 - theo))
	}
	conf := cfg.Workload.Confidence
	traces := trace.Collate(nw.Tuples())
	var (
		exposed, hits      int
		observedSum        int
		topCountIdentified int
		idCount, idRounds  int
		hSums              = make([]float64, rounds)
		deanonymized       int
		sum                stats.Summary
	)
	for s := 0; s < sessions; s++ {
		sender := senders[s]
		counts := make(map[trace.NodeID]int)
		// counted fixes the iteration order of the posterior sums (first
		// observation order), so results are bit-reproducible — ranging
		// over the counts map would reassociate the floating-point sums.
		var counted []trace.NodeID
		identifiedAt := 0
		final := 0.0
		for r := 0; r < rounds; r++ {
			mt := traces[ids[s*rounds+r]]
			if mt != nil && len(mt.Reports) > 0 {
				pred := mt.Reports[0].Pred
				exposed++
				observedSum++
				if pred == sender {
					hits++
				}
				if counts[pred] == 0 {
					counted = append(counted, pred)
				}
				counts[pred]++
			}
			h, top, mass := countPosterior(counts, counted, honest, logRatio)
			hSums[r] += h
			final = h
			if identifiedAt == 0 && conf > 0 && top == sender && mass >= conf {
				identifiedAt = r + 1
			}
		}
		sum.Add(final)
		if final < 1e-9 {
			deanonymized++
		}
		if identifiedAt > 0 {
			idCount++
			idRounds += identifiedAt
		}
		if topCountUnique(counts) == sender {
			topCountIdentified++
		}
	}
	for r := range hSums {
		hSums[r] /= float64(sessions)
	}
	okPI, err := crowds.ProbableInnocence(n, c, pf)
	if err != nil {
		return Result{}, err
	}
	hEvent, err := crowds.EventEntropy(n, c, pf)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Estimated:    true,
		Trials:       sessions,
		MaxH:         entropy.Max(n),
		Deanonymized: deanonymized,
		Kernel:       kernelStats(nw, goroutines, elapsed),
		Crowds: &CrowdsReport{
			Pf:                      pf,
			Observed:                exposed,
			Hits:                    hits,
			PredecessorProb:         theo,
			ProbableInnocence:       okPI,
			EventEntropy:            hEvent,
			TopCountIdentifiedShare: float64(topCountIdentified) / float64(sessions),
			MeanObservedRounds:      float64(observedSum) / float64(sessions),
		},
	}
	if cfg.Workload.degradation() {
		// Multi-round runs report the accumulated count-posterior entropy
		// (mean over sessions), like every other substrate.
		res.H = sum.Mean()
		res.StdErr = sum.StdErr()
		res.CI95 = sum.CI95()
		res.HRounds = hSums
		if conf > 0 {
			res.IdentifiedShare = float64(idCount) / float64(sessions)
			if idCount > 0 {
				res.MeanRoundsToIdentify = float64(idRounds) / float64(idCount)
			}
		}
	} else {
		// H carries the posterior entropy of the predecessor event — the
		// quantity the paper's §2 survey quotes for Crowds.
		res.H = hEvent
	}
	res.Normalized = entropy.Normalized(res.H, n)
	return res, nil
}

// crowdsRoute materializes one Crowds path as an explicit route: the
// initiator's mandatory first uniform hop, then coin-flip continuations —
// draw for draw the sequence crowds.Forwarder would make, but taken
// serially at injection time so multi-round runs are bit-reproducible.
func crowdsRoute(rng *rand.Rand, n int, pf float64) []trace.NodeID {
	route := []trace.NodeID{trace.NodeID(rng.Intn(n))}
	for rng.Float64() < pf {
		route = append(route, trace.NodeID(rng.Intn(n)))
	}
	return route
}

// countPosterior returns the entropy (bits), argmax node, and argmax mass
// of the predecessor-count posterior over the honest jondos: a jondo with
// count m carries weight exp(m·logRatio), uncounted jondos weight 1. The
// counted slice fixes the summation order. Cost is O(distinct counted
// nodes), independent of N.
func countPosterior(counts map[trace.NodeID]int, counted []trace.NodeID, honest int, logRatio float64) (float64, trace.NodeID, float64) {
	if honest <= 1 {
		// A single honest jondo is trivially identified.
		return 0, 0, 1
	}
	// W = Σ_v w_v with w_v = exp(m_v·logRatio); uncounted jondos have
	// w = 1. H = log2(W) − (Σ_v w_v·log2 w_v)/W, and uncounted jondos
	// contribute nothing to the weighted log sum.
	w := float64(honest - len(counts))
	var wLog float64
	top := trace.NodeID(-1)
	topW := 1.0 // any uncounted jondo, if every count is below weight 1
	for _, v := range counted {
		m := counts[v]
		wv := math.Exp(float64(m) * logRatio)
		w += wv
		wLog += wv * float64(m) * logRatio
		if wv > topW {
			topW, top = wv, v
		}
	}
	h := (math.Log(w) - wLog/w) / math.Ln2
	if h < 0 {
		h = 0 // guard against negative zero from rounding
	}
	return h, top, topW / w
}

// topCountUnique returns the node with the strictly highest predecessor
// count, or −1 when the maximum is tied or no observation was made.
func topCountUnique(counts map[trace.NodeID]int) trace.NodeID {
	best, bestCount, unique := trace.NodeID(-1), -1, false
	// A strict maximum is reached (and ties rejected) whatever the sweep
	// order: the result is a pure function of the multiset of counts.
	//anonlint:allow detrand(strict argmax with tie rejection is order-independent)
	for v, m := range counts {
		switch {
		case m > bestCount:
			best, bestCount, unique = v, m, true
		case m == bestCount:
			unique = false
		}
	}
	if !unique {
		return trace.NodeID(-1)
	}
	return best
}

// kernelStats snapshots the network's kernel counters into the Result
// form shared by every testbed substrate.
func kernelStats(nw *simnet.Network, goroutines int, elapsed time.Duration) *KernelStats {
	m := nw.Metrics()
	k := &KernelStats{
		Shards:       m.Shards,
		Events:       m.Events,
		BatchFlushes: m.BatchFlushes,
		Churn:        m.Churn,
		Goroutines:   goroutines,
	}
	if s := elapsed.Seconds(); s > 0 {
		k.EventsPerSec = float64(m.Events) / s
	}
	return k
}

func init() { Register(testbedBackend{}) }
