package scenario

// The testbed backend: executes scenarios on the sharded discrete-event
// network kernel (package simnet) with the protocol substrate the config
// names — plain source routes, onion layers, Crowds coin-flips, or
// threshold-mix batching — and measures the anonymity degree empirically
// by running the adversary's inference over the collected tuples.

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"runtime"
	"time"

	"anonmix/internal/adversary"
	"anonmix/internal/crowds"
	"anonmix/internal/entropy"
	"anonmix/internal/events"
	"anonmix/internal/onion"
	"anonmix/internal/pathsel"
	"anonmix/internal/scenario/capability"
	"anonmix/internal/simnet"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// defaultMixBatch is the threshold-mix batch size when ProtocolMix is
// selected without an explicit Workload.BatchThreshold.
const defaultMixBatch = 8

// settleTimeout bounds how long a testbed run may take to drain.
const settleTimeout = 5 * time.Minute

type testbedBackend struct{}

func (testbedBackend) Kind() BackendKind { return BackendTestbed }

func (testbedBackend) Run(cfg Config) (Result, error) {
	if cfg.Workload.Messages <= 0 {
		return Result{}, fmt.Errorf("%w: testbed needs Workload.Messages > 0", ErrBadConfig)
	}
	if cfg.Protocol == ProtocolCrowds {
		return runCrowds(cfg)
	}
	if cfg.Strategy.Kind != pathsel.Simple {
		return Result{}, capability.Unsupported(string(BackendTestbed),
			capability.ErrComplicatedPaths, cfg.Strategy.Name+" (run it on the crowds substrate)")
	}
	return runRouted(cfg)
}

// runRouted executes the source-routed substrates (plain, onion, mix):
// paths come from the strategy's selector, the network carries them, and
// the adversary's empirical mean posterior entropy is the measured H*(S).
func runRouted(cfg Config) (Result, error) {
	engine, err := Engine(cfg.N, len(cfg.Adversary.Compromised), engineOptions(cfg)...)
	if err != nil {
		return Result{}, err
	}
	if engine.Mode() != events.InferenceStandard {
		return Result{}, capability.Unsupported(string(BackendTestbed),
			capability.ErrInference, engine.Mode().String())
	}
	if !engine.SenderSelfReport() {
		// The empirical pipeline hardcodes the local-eavesdropper branch
		// (a compromised sender is identified outright); running the
		// no-self-report ablation here would silently bias H low.
		return Result{}, capability.Unsupported(string(BackendTestbed),
			capability.ErrInference, "no-sender-self-report ablation is exact-only")
	}
	// The config arrives normalized from Run, and the engine is already in
	// hand — build the analyst directly.
	analyst, err := adversary.NewAnalyst(engine, cfg.Strategy.Length, cfg.Adversary.Compromised)
	if err != nil {
		return Result{}, err
	}
	sel, err := pathsel.NewSelector(cfg.N, cfg.Strategy)
	if err != nil {
		return Result{}, err
	}

	nwCfg := simnet.Config{
		N:           cfg.N,
		Compromised: cfg.Adversary.Compromised,
		Seed:        cfg.Workload.Seed,
		MaxHopDelay: cfg.Workload.MaxHopDelay,
	}
	var ring *onion.KeyRing
	if cfg.Protocol == ProtocolOnion {
		var secret [8]byte
		binary.LittleEndian.PutUint64(secret[:], uint64(cfg.Workload.Seed)+0x517cc1b727220a95)
		ring, err = onion.NewKeyRing(secret[:], cfg.N)
		if err != nil {
			return Result{}, err
		}
		fwd, err := onion.NewForwarder(ring)
		if err != nil {
			return Result{}, err
		}
		nwCfg.Forwarder = fwd
	}
	if cfg.Protocol == ProtocolMix {
		nwCfg.BatchThreshold = cfg.Workload.BatchThreshold
		if nwCfg.BatchThreshold < 2 {
			nwCfg.BatchThreshold = defaultMixBatch
		}
		// Batch composition follows arrival order, which is scheduling-
		// dependent across shards; one shard keeps mix scenarios
		// bit-reproducible for a fixed seed (plain/onion runs stay
		// parallel — their analysis is order-independent).
		nwCfg.Shards = 1
	}
	baseGoroutines := runtime.NumGoroutine()
	nw, err := simnet.New(nwCfg)
	if err != nil {
		return Result{}, err
	}
	nw.Start()
	defer nw.Close()

	start := time.Now()
	rng := stats.NewRand(cfg.Workload.Seed)
	senders := make(map[trace.MessageID]trace.NodeID, cfg.Workload.Messages)
	for i := 0; i < cfg.Workload.Messages; i++ {
		sender := trace.NodeID(rng.Intn(cfg.N))
		path, err := sel.SelectPath(rng, sender)
		if err != nil {
			return Result{}, err
		}
		var id trace.MessageID
		if cfg.Protocol == ProtocolOnion && len(path) > 0 {
			blob, err := onion.Build(ring, path, nil, cryptorand.Reader)
			if err != nil {
				return Result{}, err
			}
			id, err = nw.Inject(sender, path[0], simnet.Packet{Onion: blob})
			if err != nil {
				return Result{}, err
			}
		} else {
			id, err = nw.SendRoute(sender, path, nil)
			if err != nil {
				return Result{}, err
			}
		}
		senders[id] = sender
	}
	goroutines := max(runtime.NumGoroutine()-baseGoroutines, 0)
	if err := nw.WaitSettled(settleTimeout); err != nil {
		return Result{}, err
	}
	elapsed := time.Since(start)
	if drops := nw.Dropped(); len(drops) > 0 {
		return Result{}, fmt.Errorf("scenario: testbed dropped %d packets: %w", len(drops), drops[0])
	}

	var sum stats.Summary
	var compSenders, deanonymized int
	tuples := nw.Tuples()
	for id, mt := range trace.Collate(tuples) {
		sender := senders[id]
		if analyst.Compromised(sender) {
			// Local-eavesdropper branch: the adversary's agent at the
			// sender identifies it outright.
			sum.Add(0)
			compSenders++
			deanonymized++
			continue
		}
		h, err := analyst.Entropy(mt)
		if err != nil {
			return Result{}, fmt.Errorf("scenario: message %d: %w", id, err)
		}
		if h < 1e-9 {
			deanonymized++
		}
		sum.Add(h)
	}
	if sum.N() != cfg.Workload.Messages {
		return Result{}, fmt.Errorf("scenario: analyzed %d of %d messages", sum.N(), cfg.Workload.Messages)
	}

	res := Result{
		H:                      sum.Mean(),
		StdErr:                 sum.StdErr(),
		CI95:                   sum.CI95(),
		Estimated:              true,
		Trials:                 sum.N(),
		MaxH:                   entropy.Max(cfg.N),
		Normalized:             entropy.Normalized(sum.Mean(), cfg.N),
		CompromisedSenderShare: float64(compSenders) / float64(sum.N()),
		Deanonymized:           deanonymized,
		Kernel:                 kernelStats(nw, goroutines, elapsed),
	}
	return res, nil
}

// runCrowds executes the coin-flip jondo substrate: routing is the
// protocol's own (no strategy selector), honest jondos originate, and the
// result carries the Reiter–Rubin predecessor statistics next to the
// posterior entropy of the observed event.
func runCrowds(cfg Config) (Result, error) {
	n, comp := cfg.N, cfg.Adversary.Compromised
	c := len(comp)
	pf := cfg.CrowdsPf
	theo, err := crowds.PredecessorProb(n, c, pf)
	if err != nil {
		return Result{}, fmt.Errorf("%w: crowds substrate: %w", ErrBadConfig, err)
	}
	fwd, err := crowds.NewForwarder(n, pf, cfg.Workload.Seed)
	if err != nil {
		return Result{}, err
	}
	baseGoroutines := runtime.NumGoroutine()
	nw, err := simnet.New(simnet.Config{
		N:           n,
		Compromised: comp,
		Forwarder:   fwd,
		Seed:        cfg.Workload.Seed,
		MaxHopDelay: cfg.Workload.MaxHopDelay,
	})
	if err != nil {
		return Result{}, err
	}
	nw.Start()
	defer nw.Close()

	compromised := make(map[trace.NodeID]bool, c)
	for _, id := range comp {
		compromised[id] = true
	}
	start := time.Now()
	rng := stats.NewRand(cfg.Workload.Seed)
	senders := make(map[trace.MessageID]trace.NodeID, cfg.Workload.Messages)
	for i := 0; i < cfg.Workload.Messages; i++ {
		// Honest initiators only: the predecessor analysis conditions on
		// an uncompromised originator.
		sender := trace.NodeID(rng.Intn(n))
		for compromised[sender] {
			sender = trace.NodeID(rng.Intn(n))
		}
		id, err := nw.Inject(sender, fwd.FirstHop(sender), simnet.Packet{})
		if err != nil {
			return Result{}, err
		}
		senders[id] = sender
	}
	goroutines := max(runtime.NumGoroutine()-baseGoroutines, 0)
	if err := nw.WaitSettled(settleTimeout); err != nil {
		return Result{}, err
	}
	elapsed := time.Since(start)

	var exposed, hits int
	tuples := nw.Tuples()
	for id, mt := range trace.Collate(tuples) {
		if len(mt.Reports) == 0 {
			continue
		}
		exposed++
		if mt.Reports[0].Pred == senders[id] {
			hits++
		}
	}
	okPI, err := crowds.ProbableInnocence(n, c, pf)
	if err != nil {
		return Result{}, err
	}
	hEvent, err := crowds.EventEntropy(n, c, pf)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		// H carries the posterior entropy of the predecessor event — the
		// quantity the paper's §2 survey quotes for Crowds.
		H:          hEvent,
		Estimated:  true,
		Trials:     cfg.Workload.Messages,
		MaxH:       entropy.Max(n),
		Normalized: entropy.Normalized(hEvent, n),
		Kernel:     kernelStats(nw, goroutines, elapsed),
		Crowds: &CrowdsReport{
			Pf:                pf,
			Observed:          exposed,
			Hits:              hits,
			PredecessorProb:   theo,
			ProbableInnocence: okPI,
			EventEntropy:      hEvent,
		},
	}
	return res, nil
}

// kernelStats snapshots the network's kernel counters into the Result
// form shared by every testbed substrate.
func kernelStats(nw *simnet.Network, goroutines int, elapsed time.Duration) *KernelStats {
	m := nw.Metrics()
	k := &KernelStats{
		Shards:       m.Shards,
		Events:       m.Events,
		BatchFlushes: m.BatchFlushes,
		Goroutines:   goroutines,
	}
	if s := elapsed.Seconds(); s > 0 {
		k.EventsPerSec = float64(m.Events) / s
	}
	return k
}

func init() { Register(testbedBackend{}) }
