package scenario

// The Monte-Carlo backend: the sampling estimator of package montecarlo,
// which draws concrete paths, synthesizes the adversary's observations,
// and averages exactly-computed posterior entropies (unbiased, low
// variance).

import (
	"anonmix/internal/entropy"
	"anonmix/internal/montecarlo"
	"anonmix/internal/scenario/capability"
)

type mcBackend struct{}

func (mcBackend) Kind() BackendKind { return BackendMonteCarlo }

func (mcBackend) Run(cfg Config) (Result, error) {
	if !analyticProtocol(cfg.Protocol) {
		return Result{}, capability.Unsupported(string(BackendMonteCarlo),
			capability.ErrProtocol, cfg.Protocol.String())
	}
	engine, err := Engine(cfg.N, len(cfg.Adversary.Compromised), engineOptions(cfg)...)
	if err != nil {
		return Result{}, err
	}
	res, err := montecarlo.EstimateH(montecarlo.Config{
		N:             cfg.N,
		Compromised:   cfg.Adversary.Compromised,
		Strategy:      cfg.Strategy,
		Trials:        cfg.Workload.Messages,
		Rounds:        cfg.Workload.Rounds,
		Confidence:    cfg.Workload.Confidence,
		FixedSender:   cfg.Workload.FixedSender,
		Sender:        cfg.Workload.Sender,
		Seed:          cfg.Workload.Seed,
		Workers:       cfg.Workload.Workers,
		EngineOptions: engineOptions(cfg),
		Engine:        engine,
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		H:                      res.H,
		StdErr:                 res.StdErr,
		CI95:                   res.CI95,
		Estimated:              true,
		Trials:                 res.Trials,
		MaxH:                   entropy.Max(cfg.N),
		Normalized:             entropy.Normalized(res.H, cfg.N),
		CompromisedSenderShare: res.CompromisedSenderShare,
		HRounds:                res.HRounds,
		IdentifiedShare:        res.IdentifiedShare,
		MeanRoundsToIdentify:   res.MeanRoundsToIdentify,
	}, nil
}

func init() { Register(mcBackend{}) }
