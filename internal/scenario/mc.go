package scenario

// The Monte-Carlo backend: the sampling estimator of package montecarlo,
// which draws concrete paths, synthesizes the adversary's observations,
// and averages exactly-computed posterior entropies (unbiased, low
// variance).

import (
	"math"

	"anonmix/internal/entropy"
	"anonmix/internal/montecarlo"
	"anonmix/internal/pool"
	"anonmix/internal/scenario/capability"
	"anonmix/internal/trace"
)

type mcBackend struct{}

func (mcBackend) Kind() BackendKind { return BackendMonteCarlo }

func (mcBackend) Run(cfg Config) (Result, error) {
	if !analyticProtocol(cfg.Protocol) {
		return Result{}, capability.Unsupported(string(BackendMonteCarlo),
			capability.ErrProtocol, cfg.Protocol.String())
	}
	if cfg.Faults != nil && len(cfg.Faults.Crashes) > 0 {
		// Crash outages are timing phenomena of the event kernel; the
		// timing-free sampler has no clock to schedule them on.
		return Result{}, capability.Unsupported(string(BackendMonteCarlo),
			capability.ErrFaults, "crash schedules are testbed-only")
	}
	if len(cfg.phases) > 0 {
		return runMCTimeline(cfg)
	}
	engine, err := Engine(cfg.N, len(cfg.Adversary.Compromised), engineOptions(cfg)...)
	if err != nil {
		return Result{}, err
	}
	mcCfg := montecarlo.Config{
		N:             cfg.N,
		Compromised:   cfg.Adversary.Compromised,
		Strategy:      cfg.Strategy,
		Trials:        cfg.Workload.Messages,
		Rounds:        cfg.Workload.Rounds,
		Confidence:    cfg.Workload.Confidence,
		FixedSender:   cfg.Workload.FixedSender,
		Sender:        cfg.Workload.Sender,
		Seed:          cfg.Workload.Seed,
		Workers:       cfg.Workload.Workers,
		EngineOptions: engineOptions(cfg),
		Engine:        engine,
		Cancel:        cfg.cancelChan(),
	}
	applyFaults(&mcCfg, cfg)
	if cfg.Progress != nil {
		mcCfg.Progress = func(done, total int) { cfg.emitProgress(done, total, nil) }
	}
	res, err := montecarlo.EstimateH(mcCfg)
	if err != nil {
		return Result{}, err
	}
	return Result{
		H:                      res.H,
		StdErr:                 res.StdErr,
		CI95:                   res.CI95,
		Estimated:              true,
		Trials:                 res.Trials,
		MaxH:                   entropy.Max(cfg.N),
		Normalized:             entropy.Normalized(res.H, cfg.N),
		CompromisedSenderShare: res.CompromisedSenderShare,
		HRounds:                res.HRounds,
		IdentifiedShare:        res.IdentifiedShare,
		MeanRoundsToIdentify:   res.MeanRoundsToIdentify,
		DeliveryRate:           res.DeliveryRate,
		MeanAttempts:           res.MeanAttempts,
		HDegraded:              res.HDegraded,
	}, nil
}

// applyFaults threads a scenario fault plan into an estimator config
// (loss probability and retry policy; jitter is timing-only and crashes
// were rejected above).
func applyFaults(mcCfg *montecarlo.Config, cfg Config) {
	if cfg.Faults == nil {
		return
	}
	mcCfg.LinkLoss = cfg.Faults.LinkLoss
	mcCfg.Policy = cfg.Reliability.Policy
	mcCfg.MaxAttempts = cfg.Reliability.MaxAttempts
}

// runMCTimeline executes a dynamic-population scenario by sampling. A
// degradation (Rounds) timeline runs the shared phased-session machinery
// in parallel across forked worker streams. A single-shot (Messages)
// timeline is sampled stratified: every phase runs the static estimator in
// its own dense population with its own budget and deterministic derived
// seed, and the strata blend by their traffic weights — the same mixture
// the exact backend computes in closed form, with the variance of each
// stratum combining in quadrature.
func runMCTimeline(cfg Config) (Result, error) {
	if timelineRounds(cfg.phases) {
		workers := cfg.Workload.Workers
		if workers <= 0 {
			workers = pool.Workers()
		}
		return runPhasedRounds(cfg, "montecarlo", workers)
	}
	weights := timelineWeights(cfg.phases)
	res := Result{
		Estimated: true,
		MaxH:      timelineMaxH(cfg.phases),
	}
	var totalMsgs int
	for i := range cfg.phases {
		totalMsgs += cfg.phases[i].epoch.Messages
	}
	var variance float64
	var doneMsgs int
	for i := range cfg.phases {
		p := &cfg.phases[i]
		er := EpochResult{Index: i, N: p.n(), C: p.c(), Messages: p.epoch.Messages}
		if p.epoch.Messages == 0 {
			// A phase without traffic only moves the population.
			res.Epochs = append(res.Epochs, er)
			cfg.emitProgress(doneMsgs, totalMsgs, &er)
			continue
		}
		if err := cfg.checkCanceled(); err != nil {
			return Result{}, err
		}
		engine, err := Engine(p.n(), p.c(), engineOptions(cfg)...)
		if err != nil {
			return Result{}, err
		}
		mcCfg := montecarlo.Config{
			N:             p.n(),
			Compromised:   p.denseComp,
			Strategy:      cfg.Strategy,
			Trials:        p.epoch.Messages,
			Seed:          phaseSeed(cfg.Workload.Seed, i),
			Workers:       cfg.Workload.Workers,
			EngineOptions: engineOptions(cfg),
			Engine:        engine,
			Cancel:        cfg.cancelChan(),
		}
		applyFaults(&mcCfg, cfg)
		if cfg.Progress != nil {
			base := doneMsgs
			mcCfg.Progress = func(done, total int) { cfg.emitProgress(base+done, totalMsgs, nil) }
		}
		if cfg.Workload.FixedSender {
			mcCfg.FixedSender = true
			mcCfg.Sender = trace.NodeID(p.denseOf[cfg.Workload.Sender])
		}
		pr, err := montecarlo.EstimateH(mcCfg)
		if err != nil {
			return Result{}, err
		}
		w := weights[i]
		res.H += w * pr.H
		variance += w * w * pr.StdErr * pr.StdErr
		res.Trials += pr.Trials
		res.CompromisedSenderShare += w * pr.CompromisedSenderShare
		res.DeliveryRate += w * pr.DeliveryRate
		res.MeanAttempts += w * pr.MeanAttempts
		res.HDegraded += w * pr.HDegraded
		er.H = pr.H
		res.Epochs = append(res.Epochs, er)
		doneMsgs += p.epoch.Messages
		cfg.emitProgress(doneMsgs, totalMsgs, &er)
	}
	res.StdErr = math.Sqrt(variance)
	res.CI95 = 1.96 * res.StdErr
	res.Normalized = res.H / res.MaxH
	return res, nil
}

func init() { Register(mcBackend{}) }
