package scenario_test

// Fuzz targets for the scenario layer's input surface, mirroring
// onion.FuzzBuildPeel: arbitrary configurations and CLI epoch specs must
// never panic, and the only errors that escape Run are the uniform
// configuration error (ErrBadConfig / pathsel.ErrBadStrategy) and backend
// capability refusals.

import (
	"errors"
	"strings"
	"testing"
	"unicode"

	"anonmix/internal/pathsel"
	"anonmix/internal/scenario"
	"anonmix/internal/scenario/capability"
	"anonmix/internal/trace"
)

// boundedSpec rejects specs whose numeric arguments are large enough to
// make strategy construction itself expensive (the truncated-geometric
// constructor is linear in maxLen); the fuzzer should explore the parse
// and validation space, not benchmark it.
func boundedSpec(spec string) bool {
	digits := 0
	for _, r := range spec {
		if unicode.IsDigit(r) {
			digits++
			if digits > 6 {
				return false
			}
		} else {
			digits = 0
		}
	}
	return true
}

// allowedRunError reports whether an error is part of Run's contract.
func allowedRunError(err error) bool {
	if errors.Is(err, scenario.ErrBadConfig) || errors.Is(err, pathsel.ErrBadStrategy) ||
		errors.Is(err, scenario.ErrUnknownBackend) {
		return true
	}
	var capErr *capability.Error
	return errors.As(err, &capErr)
}

// FuzzNormalize drives scenario.Run (exact backend, tiny budgets) with
// arbitrary field values, seeded from the validation-table cases.
func FuzzNormalize(f *testing.F) {
	// Seeds mirror the validation tables of scenario_test and
	// timeline_test: the known-tricky corners of the space.
	f.Add(12, 2, "fixed:3", "plain", 0.0, 10, 1, 0.0, false, 0, "", false, false)
	f.Add(12, 2, "crowds:0.7", "onion", 0.0, 100, 1, 0.0, false, 0, "", false, false)
	f.Add(12, 2, "fixed:3", "plain", 1.5, 10, 1, 0.0, false, 0, "", false, false)
	f.Add(12, 2, "fixed:3", "plain", 0.0, 0, 4, 0.0, false, 0, "", false, false)
	f.Add(12, 2, "fixed:3", "plain", 0.0, 10, -1, 0.0, false, 0, "", false, false)
	f.Add(12, 2, "fixed:3", "plain", 0.0, 10, 1, 1.0, false, 0, "", false, false)
	f.Add(12, 2, "fixed:3", "plain", 0.0, 10, 1, 0.0, true, 12, "", false, false)
	f.Add(12, 2, "fixed:3", "plain", 0.0, 10, 1, 0.0, true, 1, "", false, false)
	f.Add(12, 2, "fixed:3", "mix", 0.0, 10, 1, 0.0, false, 0, "", true, true)
	f.Add(12, 2, "fixed:3", "plain", 0.0, 100, 1, 0.0, false, 0, "msgs=10;msgs=10,join=2", false, false)
	f.Add(12, 2, "fixed:3", "plain", 0.0, 50, 0, 0.9, false, 0, "rounds=2;rounds=2,comp=3", false, false)
	f.Add(12, 2, "fixed:9", "plain", 0.0, 0, 1, 0.0, false, 0, "msgs=10;msgs=10,leave=4", false, false)
	f.Add(12, 2, "uniform:0,6", "plain", 0.0, 10, 1, 0.0, false, 0, "msgs=1,rounds=1", false, false)
	f.Add(12, 2, "remailer:2", "plain", 0.0, 10, 1, 0.0, false, 0, "join=2;leave=2", false, false)

	f.Fuzz(func(t *testing.T, n, c int, spec, proto string, pf float64,
		messages, rounds int, conf float64, fixedSender bool, sender int,
		epochs string, uncompReceiver, noSelfReport bool) {
		if !boundedSpec(spec) {
			return
		}
		// Bound the run cost, not the validation space: sizes stay
		// arbitrary in sign and shape, only magnitudes are clamped.
		if n > 48 {
			n %= 48
		}
		if c > 48 {
			c %= 48
		}
		if messages > 256 {
			messages %= 256
		}
		if rounds > 8 {
			rounds %= 8
		}
		timeline, err := scenario.ParseTimeline(epochs)
		if err != nil {
			if !errors.Is(err, scenario.ErrBadConfig) {
				t.Fatalf("ParseTimeline(%q) escaped with %v", epochs, err)
			}
			timeline = nil
		}
		if len(timeline) > 6 {
			timeline = timeline[:6]
		}
		for i := range timeline {
			if timeline[i].Messages > 128 {
				timeline[i].Messages %= 128
			}
			if timeline[i].Rounds > 4 {
				timeline[i].Rounds %= 4
			}
			for _, field := range []*int{&timeline[i].Join, &timeline[i].Leave, &timeline[i].Compromise, &timeline[i].Recover} {
				if *field > 64 {
					*field %= 64
				}
			}
		}
		protocol, err := scenario.ParseProtocol(proto)
		if err != nil {
			if !errors.Is(err, scenario.ErrBadConfig) {
				t.Fatalf("ParseProtocol(%q) escaped with %v", proto, err)
			}
			return
		}
		cfg := scenario.Config{
			N:            n,
			Backend:      scenario.BackendExact,
			StrategySpec: spec,
			Protocol:     protocol,
			CrowdsPf:     pf,
			Adversary: scenario.Adversary{
				Count:                 c,
				UncompromisedReceiver: uncompReceiver,
				NoSenderSelfReport:    noSelfReport,
			},
			Timeline: timeline,
			Workload: scenario.Workload{
				Messages:    messages,
				Rounds:      rounds,
				Confidence:  conf,
				FixedSender: fixedSender,
				Sender:      trace.NodeID(sender),
				Seed:        1,
			},
		}
		if _, err := scenario.Run(cfg); err != nil && !allowedRunError(err) {
			t.Fatalf("Run escaped with %v (%T)\nconfig: %+v", err, err, cfg)
		}
	})
}

// FuzzParseTimeline exercises the CLI epoch syntax directly: no panics,
// and every rejection is ErrBadConfig.
func FuzzParseTimeline(f *testing.F) {
	f.Add("msgs=2000;msgs=2000,join=10,comp=2")
	f.Add("rounds=4;rounds=4,leave=3,recover=1")
	f.Add(";;,")
	f.Add("msgs")
	f.Add("warp=3")
	f.Add("m=1,r=2,j=3,leave=4,comp=5,recover=6")
	f.Fuzz(func(t *testing.T, s string) {
		tl, err := scenario.ParseTimeline(s)
		if err != nil {
			if !errors.Is(err, scenario.ErrBadConfig) {
				t.Fatalf("ParseTimeline(%q) escaped with %v", s, err)
			}
			return
		}
		if strings.TrimSpace(s) != "" && len(tl) == 0 {
			t.Fatalf("ParseTimeline(%q) returned no epochs and no error", s)
		}
	})
}
