package simnet

import (
	"errors"
	"testing"
	"time"

	"anonmix/internal/trace"
)

// TestChurnValidation pins the per-node state machine of the churn
// schedule: every illegal transition is rejected with ErrBadConfig.
func TestChurnValidation(t *testing.T) {
	base := func() Config { return Config{N: 6, Compromised: []trace.NodeID{0}} }
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"join of live node", func(c *Config) {
			c.Churn = []ChurnEvent{{Time: 5, Kind: ChurnJoin, Node: 2}}
		}},
		{"leave of absent node", func(c *Config) {
			c.Down = []trace.NodeID{3}
			c.Churn = []ChurnEvent{{Time: 5, Kind: ChurnLeave, Node: 3}}
		}},
		{"leave of compromised node", func(c *Config) {
			c.Churn = []ChurnEvent{{Time: 5, Kind: ChurnLeave, Node: 0}}
		}},
		{"double compromise", func(c *Config) {
			c.Churn = []ChurnEvent{
				{Time: 5, Kind: ChurnCompromise, Node: 2},
				{Time: 9, Kind: ChurnCompromise, Node: 2},
			}
		}},
		{"compromise of absent node", func(c *Config) {
			c.Down = []trace.NodeID{3}
			c.Churn = []ChurnEvent{{Time: 5, Kind: ChurnCompromise, Node: 3}}
		}},
		{"recover of honest node", func(c *Config) {
			c.Churn = []ChurnEvent{{Time: 5, Kind: ChurnRecover, Node: 2}}
		}},
		{"node out of range", func(c *Config) {
			c.Churn = []ChurnEvent{{Time: 5, Kind: ChurnJoin, Node: 6}}
		}},
		{"unknown kind", func(c *Config) {
			c.Churn = []ChurnEvent{{Time: 5, Kind: ChurnKind(9), Node: 2}}
		}},
		{"down node compromised", func(c *Config) {
			c.Down = []trace.NodeID{0}
		}},
		{"duplicate down node", func(c *Config) {
			c.Down = []trace.NodeID{3, 3}
		}},
		{"down node out of range", func(c *Config) {
			c.Down = []trace.NodeID{7}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
	// A legal lifecycle passes: join → compromise → recover → leave.
	cfg := base()
	cfg.Down = []trace.NodeID{5}
	cfg.Churn = []ChurnEvent{
		{Time: 10, Kind: ChurnJoin, Node: 5},
		{Time: 20, Kind: ChurnCompromise, Node: 5},
		{Time: 30, Kind: ChurnRecover, Node: 5},
		{Time: 40, Kind: ChurnLeave, Node: 5},
	}
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.Metrics().Churn; got != 4 {
		t.Errorf("Metrics.Churn = %d, want 4", got)
	}
}

// TestChurnTapFollowsVirtualTime: a node compromised at virtual time T taps
// traffic with timestamps ≥ T and nothing before, regardless of wall-clock
// processing order.
func TestChurnTapFollowsVirtualTime(t *testing.T) {
	nw, err := New(Config{
		N: 6,
		Churn: []ChurnEvent{
			{Time: 100, Kind: ChurnCompromise, Node: 3},
			{Time: 200, Kind: ChurnRecover, Node: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()

	// Phase 1 (t < 100): node 3 honest — no tap.
	early, err := nw.SendRoute(1, []trace.NodeID{3, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Settle(time.Second); err != nil {
		t.Fatal(err)
	}
	// Phase 2 (100 ≤ t < 200): node 3 compromised — tapped.
	nw.AdvanceTime(100)
	mid, err := nw.SendRoute(1, []trace.NodeID{3, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Settle(time.Second); err != nil {
		t.Fatal(err)
	}
	// Phase 3 (t ≥ 200): recovered — no tap again.
	nw.AdvanceTime(200)
	late, err := nw.SendRoute(1, []trace.NodeID{3, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Settle(time.Second); err != nil {
		t.Fatal(err)
	}

	taps := map[trace.MessageID]int{}
	for _, tu := range nw.Tuples() {
		if tu.Observer == trace.NodeID(3) {
			taps[tu.Msg]++
		}
	}
	if taps[early] != 0 || taps[mid] != 1 || taps[late] != 0 {
		t.Errorf("taps by node 3: early=%d mid=%d late=%d, want 0/1/0", taps[early], taps[mid], taps[late])
	}
	if len(nw.Deliveries()) != 3 {
		t.Errorf("deliveries = %d, want 3", len(nw.Deliveries()))
	}
}

// TestChurnMembershipGates: traffic to an absent node is dropped with
// ErrAbsent, both at injection (absent sender) and in flight (absent hop),
// and a joiner becomes reachable from its join time on.
func TestChurnMembershipGates(t *testing.T) {
	nw, err := New(Config{
		N:    5,
		Down: []trace.NodeID{4},
		Churn: []ChurnEvent{
			{Time: 100, Kind: ChurnJoin, Node: 4},
			{Time: 100, Kind: ChurnLeave, Node: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()

	// The not-yet-joined node cannot send.
	if _, err := nw.SendRoute(4, []trace.NodeID{1}, nil); !errors.Is(err, ErrAbsent) {
		t.Errorf("absent sender err = %v, want ErrAbsent", err)
	}
	// Routing through the not-yet-joined node drops the packet.
	if _, err := nw.SendRoute(0, []trace.NodeID{4, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := nw.Settle(time.Second); err != nil {
		t.Fatal(err)
	}
	drops := nw.Dropped()
	if len(drops) != 1 || !errors.Is(drops[0], ErrAbsent) {
		t.Fatalf("drops = %v, want one ErrAbsent", drops)
	}

	// After the boundary the joiner works and the leaver is gone.
	nw.AdvanceTime(100)
	if _, err := nw.SendRoute(4, []trace.NodeID{1}, nil); err != nil {
		t.Errorf("joined sender refused: %v", err)
	}
	if _, err := nw.SendRoute(0, []trace.NodeID{2}, nil); err != nil {
		t.Fatal(err)
	}
	if err := nw.Settle(time.Second); err != nil {
		t.Fatal(err)
	}
	if drops := nw.Dropped(); len(drops) != 2 || !errors.Is(drops[1], ErrAbsent) {
		t.Fatalf("drops after leave = %v, want a second ErrAbsent", drops)
	}
}

// TestSettleReArms: Settle flushes partial threshold-mix batches like
// WaitSettled but re-arms the network, so a later phase accumulates fresh
// batches instead of flushing every packet straight through.
func TestSettleReArms(t *testing.T) {
	nw, err := New(Config{N: 4, BatchThreshold: 3, Shards: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()

	// Two packets into node 1: a partial batch, released only by Settle.
	for i := 0; i < 2; i++ {
		if _, err := nw.SendRoute(0, []trace.NodeID{1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.Settle(time.Second); err != nil {
		t.Fatal(err)
	}
	m := nw.Metrics()
	if m.BatchFlushes != 1 {
		t.Fatalf("flushes after phase 1 = %d, want 1 (quiescence flush)", m.BatchFlushes)
	}
	if len(nw.Deliveries()) != 2 {
		t.Fatalf("deliveries after phase 1 = %d", len(nw.Deliveries()))
	}

	// Phase 2: three packets fill a batch (threshold flush), and one more
	// is again released by quiescence — proving the drain state reset.
	for i := 0; i < 4; i++ {
		if _, err := nw.SendRoute(0, []trace.NodeID{1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.Settle(time.Second); err != nil {
		t.Fatal(err)
	}
	m = nw.Metrics()
	if m.BatchFlushes != 3 {
		t.Errorf("flushes after phase 2 = %d, want 3 (threshold + quiescence)", m.BatchFlushes)
	}
	if len(nw.Deliveries()) != 6 {
		t.Errorf("deliveries after phase 2 = %d", len(nw.Deliveries()))
	}
}

// TestAdvanceTime: the injection clock only moves forward, and injections
// after an advance carry timestamps beyond it.
func TestAdvanceTime(t *testing.T) {
	nw, err := New(Config{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()
	nw.AdvanceTime(500)
	nw.AdvanceTime(100) // no-op: the clock never rewinds
	if _, err := nw.SendRoute(0, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := nw.Settle(time.Second); err != nil {
		t.Fatal(err)
	}
	d := nw.Deliveries()
	if len(d) != 1 || d[0].Time <= 500 {
		t.Errorf("delivery time = %+v, want > 500", d)
	}
}
