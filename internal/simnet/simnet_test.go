package simnet_test

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"anonmix/internal/adversary"
	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/pathsel"
	"anonmix/internal/simnet"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

func TestNewValidation(t *testing.T) {
	if _, err := simnet.New(simnet.Config{N: 1}); !errors.Is(err, simnet.ErrBadConfig) {
		t.Errorf("n=1 err = %v", err)
	}
	if _, err := simnet.New(simnet.Config{N: 5, Compromised: []trace.NodeID{7}}); !errors.Is(err, simnet.ErrBadConfig) {
		t.Errorf("bad compromised err = %v", err)
	}
	if _, err := simnet.New(simnet.Config{N: 5, Compromised: []trace.NodeID{1, 1}}); !errors.Is(err, simnet.ErrBadConfig) {
		t.Errorf("duplicate compromised err = %v", err)
	}
}

func TestDirectSend(t *testing.T) {
	nw, err := simnet.New(simnet.Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()
	id, err := nw.SendRoute(2, nil, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WaitSettled(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	dels := nw.Deliveries()
	if len(dels) != 1 {
		t.Fatalf("%d deliveries", len(dels))
	}
	d := dels[0]
	if d.Msg != id || d.Pred != 2 || string(d.Payload) != "hello" {
		t.Errorf("delivery = %+v", d)
	}
	// Receiver is always compromised: exactly one tuple, from R.
	tuples := nw.Tuples()
	if len(tuples) != 1 || tuples[0].Observer != trace.Receiver || tuples[0].Pred != 2 {
		t.Errorf("tuples = %+v", tuples)
	}
}

func TestRouteTraversalAndTaps(t *testing.T) {
	nw, err := simnet.New(simnet.Config{N: 8, Compromised: []trace.NodeID{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()
	route := []trace.NodeID{5, 1, 3, 6}
	id, err := nw.SendRoute(0, route, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WaitSettled(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	mt := trace.Collate(nw.Tuples())[id]
	if mt == nil {
		t.Fatal("no trace for message")
	}
	if len(mt.Reports) != 2 {
		t.Fatalf("reports: %+v", mt.Reports)
	}
	// Node 1 saw 5 → 3; node 3 saw 1 → 6; receiver saw 6.
	r0, r1 := mt.Reports[0], mt.Reports[1]
	if r0.Observer != 1 || r0.Pred != 5 || r0.Succ != 3 {
		t.Errorf("report 0 = %+v", r0)
	}
	if r1.Observer != 3 || r1.Pred != 1 || r1.Succ != 6 {
		t.Errorf("report 1 = %+v", r1)
	}
	if !(r0.Time < r1.Time) {
		t.Errorf("times not causal: %d %d", r0.Time, r1.Time)
	}
	if !mt.ReceiverSeen || mt.ReceiverPred != 6 {
		t.Errorf("receiver: %+v", mt)
	}
}

func TestInjectValidation(t *testing.T) {
	nw, err := simnet.New(simnet.Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Inject(0, 1, simnet.Packet{}); !errors.Is(err, simnet.ErrClosed) {
		t.Errorf("inject before start err = %v", err)
	}
	nw.Start()
	if _, err := nw.Inject(9, 1, simnet.Packet{}); !errors.Is(err, simnet.ErrBadConfig) {
		t.Errorf("bad sender err = %v", err)
	}
	if _, err := nw.Inject(0, 9, simnet.Packet{}); !errors.Is(err, simnet.ErrBadConfig) {
		t.Errorf("bad first hop err = %v", err)
	}
	nw.Close()
	if _, err := nw.SendRoute(0, nil, nil); !errors.Is(err, simnet.ErrClosed) {
		t.Errorf("send after close err = %v", err)
	}
	nw.Close() // idempotent
}

// errForwarder drops everything.
type errForwarder struct{}

func (errForwarder) Next(trace.NodeID, *simnet.Packet) (trace.NodeID, error) {
	return 0, errors.New("boom")
}

func TestDroppedPackets(t *testing.T) {
	nw, err := simnet.New(simnet.Config{N: 4, Forwarder: errForwarder{}})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()
	if _, err := nw.SendRoute(0, []trace.NodeID{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := nw.WaitSettled(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(nw.Dropped()) != 1 {
		t.Errorf("dropped = %v", nw.Dropped())
	}
	if len(nw.Deliveries()) != 0 {
		t.Errorf("deliveries = %v", nw.Deliveries())
	}
}

// badHopForwarder returns an out-of-range node.
type badHopForwarder struct{}

func (badHopForwarder) Next(trace.NodeID, *simnet.Packet) (trace.NodeID, error) {
	return trace.NodeID(99), nil
}

func TestBadHopDropped(t *testing.T) {
	nw, err := simnet.New(simnet.Config{N: 4, Forwarder: badHopForwarder{}})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()
	if _, err := nw.SendRoute(0, []trace.NodeID{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := nw.WaitSettled(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	drops := nw.Dropped()
	if len(drops) != 1 || !errors.Is(drops[0], simnet.ErrBadHop) {
		t.Errorf("dropped = %v", drops)
	}
}

func TestConcurrentSenders(t *testing.T) {
	nw, err := simnet.New(simnet.Config{N: 16, Compromised: []trace.NodeID{2}})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()
	const senders, perSender = 8, 25
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := stats.Fork(5, int64(s))
			for i := 0; i < perSender; i++ {
				route := []trace.NodeID{
					trace.NodeID(rng.Intn(16)),
					trace.NodeID(rng.Intn(16)),
				}
				if _, err := nw.SendRoute(trace.NodeID(s), route, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if err := nw.WaitSettled(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(nw.Deliveries()); got != senders*perSender {
		t.Errorf("%d deliveries, want %d", got, senders*perSender)
	}
	// Logical times along each message strictly increase.
	for id, mt := range trace.Collate(nw.Tuples()) {
		last := uint64(0)
		for _, r := range mt.Reports {
			if r.Time <= last {
				t.Errorf("msg %d: non-increasing times", id)
			}
			last = r.Time
		}
	}
}

func TestHopDelayKeepsCausalOrder(t *testing.T) {
	nw, err := simnet.New(simnet.Config{
		N: 6, Compromised: []trace.NodeID{1, 2, 3}, MaxHopDelay: 200 * time.Microsecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()
	for i := 0; i < 30; i++ {
		if _, err := nw.SendRoute(0, []trace.NodeID{1, 2, 3}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.WaitSettled(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for id, mt := range trace.Collate(nw.Tuples()) {
		if len(mt.Reports) != 3 {
			t.Fatalf("msg %d: %d reports", id, len(mt.Reports))
		}
		for i, r := range mt.Reports {
			want := trace.NodeID(i + 1)
			if r.Observer != want {
				t.Errorf("msg %d: report %d from %v, want %v (times reordered?)", id, i, r.Observer, want)
			}
		}
	}
}

// TestEndToEndAnonymityDegree is the flagship integration test: messages
// flow through the goroutine testbed, compromised nodes tap them, the
// adversary reconstructs observation classes and posteriors, and the
// empirical average entropy must match the exact engine's H*(S).
func TestEndToEndAnonymityDegree(t *testing.T) {
	const (
		n      = 14
		trials = 4000
	)
	compromised := []trace.NodeID{2, 7, 11}
	u, err := dist.NewUniform(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	strat := pathsel.Strategy{Name: "U(0,6)", Length: u, Kind: pathsel.Simple}
	sel, err := pathsel.NewSelector(n, strat)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := events.New(n, len(compromised))
	if err != nil {
		t.Fatal(err)
	}
	analyst, err := adversary.NewAnalyst(engine, u, compromised)
	if err != nil {
		t.Fatal(err)
	}

	nw, err := simnet.New(simnet.Config{N: n, Compromised: compromised})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()

	rng := stats.NewRand(2024)
	senders := make(map[trace.MessageID]trace.NodeID, trials)
	for i := 0; i < trials; i++ {
		sender := trace.NodeID(rng.Intn(n))
		path, err := sel.SelectPath(rng, sender)
		if err != nil {
			t.Fatal(err)
		}
		id, err := nw.SendRoute(sender, path, nil)
		if err != nil {
			t.Fatal(err)
		}
		senders[id] = sender
	}
	if err := nw.WaitSettled(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	var sum stats.Summary
	collated := trace.Collate(nw.Tuples())
	if len(collated) != trials {
		t.Fatalf("collated %d messages, want %d", len(collated), trials)
	}
	for id, mt := range collated {
		sender := senders[id]
		if analyst.Compromised(sender) {
			// Local-eavesdropper branch: the adversary's agent at the
			// sender identifies it outright.
			sum.Add(0)
			continue
		}
		post, err := analyst.Posterior(mt)
		if err != nil {
			t.Fatalf("msg %d: %v", id, err)
		}
		if post.P[sender] <= 0 {
			t.Fatalf("msg %d: true sender excluded by inference", id)
		}
		sum.Add(post.H)
	}
	want, err := engine.AnonymityDegree(u)
	if err != nil {
		t.Fatal(err)
	}
	tol := 4*sum.StdErr() + 1e-3
	if math.Abs(sum.Mean()-want) > tol {
		t.Errorf("testbed H = %v ± %v, engine H* = %v", sum.Mean(), sum.StdErr(), want)
	}
}

func ExampleNetwork() {
	nw, err := simnet.New(simnet.Config{N: 6, Compromised: []trace.NodeID{3}})
	if err != nil {
		panic(err)
	}
	nw.Start()
	defer nw.Close()
	if _, err := nw.SendRoute(0, []trace.NodeID{1, 3, 5}, []byte("payload")); err != nil {
		panic(err)
	}
	if err := nw.WaitSettled(5 * time.Second); err != nil {
		panic(err)
	}
	for _, tp := range nw.Tuples() {
		fmt.Printf("%s saw %s -> %s\n", tp.Observer, tp.Pred, tp.Succ)
	}
	// Output:
	// n3 saw n1 -> n5
	// R saw n5 -> R
}
