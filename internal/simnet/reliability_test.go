package simnet

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"anonmix/internal/faults"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// reliabilityNet builds and starts a network, failing the test on error.
func reliabilityNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	nw, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	nw.Start()
	t.Cleanup(nw.Close)
	return nw
}

func TestReliabilityConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 4, LinkLoss: -0.1},
		{N: 4, LinkLoss: 1.5},
		{N: 4, Policy: faults.Policy(9)},
		{N: 4, MaxAttempts: -1},
		{N: 4, RetryBackoff: -time.Nanosecond},
		{N: 4, Crashes: []faults.Crash{{Node: 9, At: 1}}},                           // node out of range
		{N: 4, Crashes: []faults.Crash{{Node: 1, At: 10, Recover: 5}}},              // recover before crash
		{N: 4, Crashes: []faults.Crash{{Node: 1, At: 10}, {Node: 1, At: 20}}},       // overlapping windows
	}
	for i, cfg := range bad {
		if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: New(%+v) = %v, want ErrBadConfig", i, cfg, err)
		}
	}
}

// TestSettleTerminatesUnderTotalLoss is the acceptance criterion: every
// policy must retire every message under 100% loss, so Settle returns.
func TestSettleTerminatesUnderTotalLoss(t *testing.T) {
	for _, policy := range []faults.Policy{faults.PolicyNone, faults.PolicyRetransmit, faults.PolicyReroute} {
		t.Run(policy.String(), func(t *testing.T) {
			nw := reliabilityNet(t, Config{N: 8, LinkLoss: 1, Policy: policy, Seed: 1})
			const msgs = 50
			for i := 0; i < msgs; i++ {
				if _, err := nw.SendRoute(trace.NodeID(i%8), []trace.NodeID{(trace.NodeID(i+1) % 8)}, nil); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			if err := nw.Settle(30 * time.Second); err != nil {
				t.Fatalf("Settle under total loss: %v", err)
			}
			if got := len(nw.Deliveries()); got != 0 {
				t.Fatalf("%d deliveries under 100%% loss", got)
			}
			st := nw.DropStats()
			failed := nw.TakeFailed()
			if policy == faults.PolicyReroute {
				if len(failed) != msgs || st.Total != 0 {
					t.Fatalf("reroute: %d handoffs, %d drops; want %d handoffs", len(failed), st.Total, msgs)
				}
			} else {
				if st.Total != msgs || st.ByCause[DropLoss] != msgs || len(failed) != 0 {
					t.Fatalf("%v: drops %+v, %d handoffs; want %d loss drops", policy, st, len(failed), msgs)
				}
			}
			if policy == faults.PolicyRetransmit {
				// Every message burns its full per-link budget before the drop.
				want := uint64(msgs * (faults.DefaultMaxAttempts - 1))
				if got := nw.Metrics().Retries; got != want {
					t.Errorf("retries = %d, want %d", got, want)
				}
			}
		})
	}
}

// TestRetransmitRecoversModerateLoss checks that per-link retransmission
// delivers everything under a loss rate the attempt budget easily absorbs,
// and that the tuple stream stays collation-clean (one report per
// observer) with retries segregated into RetryObservations.
func TestRetransmitRecoversModerateLoss(t *testing.T) {
	nw := reliabilityNet(t, Config{
		N: 16, Compromised: []trace.NodeID{1, 2}, LinkLoss: 0.2,
		Policy: faults.PolicyRetransmit, Seed: 7,
	})
	const msgs = 200
	for i := 0; i < msgs; i++ {
		route := []trace.NodeID{1, 2, trace.NodeID(3 + i%13)}
		if _, err := nw.SendRoute(0, route, nil); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := nw.Settle(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(nw.Deliveries()); got != msgs {
		t.Fatalf("delivered %d of %d (drops: %+v)", got, msgs, nw.DropStats())
	}
	// 0.2 loss with an 8-attempt budget: retries certain, all recovered.
	if nw.Metrics().Retries == 0 {
		t.Error("no retries at 20% loss")
	}
	perObserver := make(map[trace.MessageID]map[trace.NodeID]int)
	for _, tp := range nw.Tuples() {
		m := perObserver[tp.Msg]
		if m == nil {
			m = make(map[trace.NodeID]int)
			perObserver[tp.Msg] = m
		}
		m[tp.Observer]++
		if m[tp.Observer] > 1 {
			t.Fatalf("observer %v reported msg %d twice in the main stream", tp.Observer, tp.Msg)
		}
	}
	if len(nw.RetryObservations()) == 0 {
		t.Error("no retry observations from compromised relays at 20% loss")
	}
	for _, tp := range nw.RetryObservations() {
		if tp.Observer != 1 && tp.Observer != 2 {
			t.Fatalf("retry observation from honest node %v", tp.Observer)
		}
	}
}

// TestRerouteHandoff checks that reroute-policy faults surface as Failure
// records (not drops), that a driver can re-inject, and that TakeFailed
// drains and sorts.
func TestRerouteHandoff(t *testing.T) {
	nw := reliabilityNet(t, Config{N: 8, LinkLoss: 0.3, Policy: faults.PolicyReroute, Seed: 3})
	const msgs = 100
	pending := make(map[trace.MessageID]bool)
	for i := 0; i < msgs; i++ {
		id, err := nw.SendRoute(trace.NodeID(i%4), []trace.NodeID{4, 5}, nil)
		if err != nil {
			t.Fatal(err)
		}
		pending[id] = true
	}
	delivered := 0
	for round := 0; round < 8; round++ {
		if err := nw.Settle(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		failed := nw.TakeFailed()
		for i := 1; i < len(failed); i++ {
			if failed[i-1].Msg >= failed[i].Msg {
				t.Fatal("TakeFailed not sorted by message ID")
			}
		}
		if len(failed) == 0 {
			break
		}
		for range failed {
			// Fresh "path" for the retry (senders fixed, route varied).
			if _, err := nw.SendRoute(0, []trace.NodeID{trace.NodeID(1 + round%6)}, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	delivered = len(nw.Deliveries())
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if st := nw.DropStats(); st.Total != 0 {
		t.Fatalf("reroute produced drops: %+v", st)
	}
	if again := nw.TakeFailed(); len(again) > 8 {
		t.Fatalf("TakeFailed did not drain sensibly: %d", len(again))
	}
}

// TestCrashHandedToPolicy pins graceful degradation at a crashing node:
// with retransmission the packet waits out the outage and is delivered;
// with PolicyNone it is dropped with the crash cause; and a crashed mix
// node's partial batch is handed to the policy rather than leaked.
func TestCrashHandedToPolicy(t *testing.T) {
	crash := []faults.Crash{{Node: 2, At: 0, Recover: 40}}
	t.Run("retransmit-waits-out-outage", func(t *testing.T) {
		nw := reliabilityNet(t, Config{
			N: 6, Crashes: crash, Policy: faults.PolicyRetransmit,
			RetryBackoff: 16, Seed: 1,
		})
		if _, err := nw.SendRoute(0, []trace.NodeID{2, 3}, nil); err != nil {
			t.Fatal(err)
		}
		if err := nw.Settle(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		dels := nw.Deliveries()
		if len(dels) != 1 {
			t.Fatalf("delivered %d, drops %+v", len(dels), nw.DropStats())
		}
		if dels[0].Time < 40 {
			t.Errorf("delivery at t=%d, before the outage ends at 40", dels[0].Time)
		}
		if nw.Metrics().Retries == 0 {
			t.Error("no crash retries recorded")
		}
	})
	t.Run("none-drops-with-crash-cause", func(t *testing.T) {
		nw := reliabilityNet(t, Config{N: 6, Crashes: []faults.Crash{{Node: 2, At: 0}}, Seed: 1})
		if _, err := nw.SendRoute(0, []trace.NodeID{2, 3}, nil); err != nil {
			t.Fatal(err)
		}
		if err := nw.Settle(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		st := nw.DropStats()
		if st.Total != 1 || st.ByCause[DropCrash] != 1 {
			t.Fatalf("drops %+v, want one crash drop", st)
		}
	})
	t.Run("mix-batch-never-leaked", func(t *testing.T) {
		// Node 1 is a threshold mix crashing at t=10 and never recovering.
		// Its partial batch is released by the quiescence flush into the
		// crashed node, where the policy (none) must retire every packet.
		nw := reliabilityNet(t, Config{
			N: 6, BatchThreshold: 4, Shards: 1,
			Crashes: []faults.Crash{{Node: 1, At: 10}}, Seed: 1,
		})
		const msgs = 3 // below the threshold: stays buffered until the flush
		for i := 0; i < msgs; i++ {
			if _, err := nw.SendRoute(0, []trace.NodeID{1, 2}, nil); err != nil {
				t.Fatal(err)
			}
		}
		nw.AdvanceTime(50) // the flush release time falls inside the outage
		if err := nw.Settle(30 * time.Second); err != nil {
			t.Fatalf("Settle with crashed mix: %v", err)
		}
		st := nw.DropStats()
		if int(st.Total)+len(nw.Deliveries()) != msgs {
			t.Fatalf("leaked packets: %d drops + %d deliveries != %d", st.Total, len(nw.Deliveries()), msgs)
		}
	})
}

// TestLossyRunDeterministic pins that tuple streams, deliveries, retries,
// and drop totals of a lossy retransmit run are identical across shard
// counts — losses and backoffs are pure functions of the seed.
func TestLossyRunDeterministic(t *testing.T) {
	run := func(shards int) ([]trace.Tuple, []Delivery, DropStats, uint64) {
		nw := reliabilityNet(t, Config{
			N: 24, Compromised: []trace.NodeID{3, 5, 7}, LinkLoss: 0.25,
			Policy: faults.PolicyRetransmit, MaxAttempts: 4, Seed: 99, Shards: shards,
		})
		rng := stats.NewRand(11)
		for i := 0; i < 300; i++ {
			route := []trace.NodeID{
				trace.NodeID(1 + rng.Intn(23)),
				trace.NodeID(1 + rng.Intn(23)),
			}
			if route[0] == route[1] {
				route[1] = (route[1] + 1) % 24
				if route[1] == 0 {
					route[1] = 1
				}
			}
			if _, err := nw.SendRoute(0, route, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := nw.Settle(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		tuples := nw.Tuples()
		sortTuples(tuples)
		return tuples, nw.Deliveries(), nw.DropStats(), nw.Metrics().Retries
	}
	t1, d1, s1, r1 := run(1)
	t4, d4, s4, r4 := run(4)
	if r1 != r4 {
		t.Errorf("retries differ across shard counts: %d vs %d", r1, r4)
	}
	if s1.Total != s4.Total || fmt.Sprint(s1.ByCause) != fmt.Sprint(s4.ByCause) {
		t.Errorf("drop stats differ: %+v vs %+v", s1, s4)
	}
	if len(d1) != len(d4) {
		t.Fatalf("delivery counts differ: %d vs %d", len(d1), len(d4))
	}
	if len(t1) != len(t4) {
		t.Fatalf("tuple counts differ: %d vs %d", len(t1), len(t4))
	}
	for i := range t1 {
		if t1[i] != t4[i] {
			t.Fatalf("tuple %d differs: %+v vs %+v", i, t1[i], t4[i])
		}
	}
}

// TestDropStatsBounded is the scale pin for the satellite bugfix: a run
// that drops a hundred thousand packets must retain only the bounded
// sample ring plus exact counters, and the compatible Dropped() view must
// stay small while DropStats counts exactly.
func TestDropStatsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const n = 1_000_000 // million-node system, sparse lossy traffic
	nw := reliabilityNet(t, Config{N: n, LinkLoss: 1, Seed: 5})
	const msgs = 100_000
	for i := 0; i < msgs; i++ {
		if _, err := nw.SendRoute(trace.NodeID(i%n), []trace.NodeID{trace.NodeID((i + 1) % n)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.Settle(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	st := nw.DropStats()
	if st.Total != msgs || st.ByCause[DropLoss] != msgs {
		t.Fatalf("drop accounting: %+v, want %d loss drops", st, msgs)
	}
	if len(st.Samples) != dropSampleCap {
		t.Fatalf("sample ring holds %d, want %d", len(st.Samples), dropSampleCap)
	}
	if got := len(nw.Dropped()); got != dropSampleCap {
		t.Fatalf("Dropped() view holds %d, want %d", got, dropSampleCap)
	}
	if nw.Metrics().Dropped != msgs {
		t.Fatalf("Metrics.Dropped = %d", nw.Metrics().Dropped)
	}
}

// TestConcurrentPolicyTimers drives retransmission backoff timers, crash
// retries, and reroute handoffs from many shards at once; under -race
// this pins the kernel's reliability paths data-race-free.
func TestConcurrentPolicyTimers(t *testing.T) {
	for _, policy := range []faults.Policy{faults.PolicyRetransmit, faults.PolicyReroute} {
		t.Run(policy.String(), func(t *testing.T) {
			nw := reliabilityNet(t, Config{
				N: 64, Compromised: []trace.NodeID{1, 2, 3},
				LinkLoss: 0.3, Policy: policy, MaxAttempts: 4, Shards: 8,
				Crashes: []faults.Crash{{Node: 9, At: 5, Recover: 100}, {Node: 10, At: 50}},
				Seed:    13, MaxHopDelay: 3,
			})
			rng := stats.NewRand(17)
			const msgs = 2000
			for i := 0; i < msgs; i++ {
				route := []trace.NodeID{trace.NodeID(1 + rng.Intn(63)), trace.NodeID(1 + rng.Intn(63))}
				if _, err := nw.SendRoute(trace.NodeID(rng.Intn(64)), route, nil); err != nil {
					t.Fatal(err)
				}
			}
			if err := nw.Settle(time.Minute); err != nil {
				t.Fatal(err)
			}
			total := len(nw.Deliveries()) + int(nw.DropStats().Total) + len(nw.TakeFailed())
			if total != msgs {
				t.Fatalf("message conservation broken: %d retired of %d", total, msgs)
			}
		})
	}
}

// sortTuples orders a tuple slice for comparison across runs.
func sortTuples(ts []trace.Tuple) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && tupleLess(ts[j], ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func tupleLess(a, b trace.Tuple) bool {
	if a.Msg != b.Msg {
		return a.Msg < b.Msg
	}
	return a.Time < b.Time
}
