package simnet_test

// Tests of the sharded discrete-event kernel itself: node-count
// independence (no O(N) goroutines or allocations), threshold-mix
// batching, and kernel metrics.

import (
	"runtime"
	"testing"
	"time"

	"anonmix/internal/simnet"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// TestMillionNodesSparseTraffic is the scale acceptance test: a network
// with N = 1,000,000 nodes must construct and run a sparse workload
// without spawning goroutines or allocating state proportional to N.
func TestMillionNodesSparseTraffic(t *testing.T) {
	const n = 1_000_000
	before := runtime.NumGoroutine()
	nw, err := simnet.New(simnet.Config{
		N:           n,
		Compromised: []trace.NodeID{0, 1, 2, 3, 4},
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()

	during := runtime.NumGoroutine()
	if extra := during - before; extra > runtime.GOMAXPROCS(0)+4 {
		t.Fatalf("kernel spawned %d goroutines for N=%d nodes (want O(shards))", extra, n)
	}

	rng := stats.NewRand(11)
	const messages = 200
	for i := 0; i < messages; i++ {
		route := []trace.NodeID{
			trace.NodeID(rng.Intn(n)),
			trace.NodeID(rng.Intn(n)),
			trace.NodeID(rng.Intn(n)),
		}
		if _, err := nw.SendRoute(trace.NodeID(rng.Intn(n)), route, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.WaitSettled(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := len(nw.Deliveries()); got != messages {
		t.Fatalf("%d deliveries, want %d", got, messages)
	}
	m := nw.Metrics()
	// 3 intermediate-hop events per message (delivery is inline).
	if m.Events != 3*messages {
		t.Errorf("events = %d, want %d", m.Events, 3*messages)
	}
	if m.Shards > runtime.GOMAXPROCS(0)+1 {
		t.Errorf("shards = %d", m.Shards)
	}
}

// TestBatchThresholdMixes verifies threshold-mix batching: packets queued
// at a node leave together with one release time, and partial batches
// flush on quiescence so WaitSettled terminates.
func TestBatchThresholdMixes(t *testing.T) {
	nw, err := simnet.New(simnet.Config{
		N:              8,
		Compromised:    []trace.NodeID{3},
		BatchThreshold: 4,
		Shards:         2,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()

	// 6 messages through the same mix node 3: one full batch of 4, one
	// partial batch of 2 that only the quiescence flush can release.
	const messages = 6
	for i := 0; i < messages; i++ {
		if _, err := nw.SendRoute(trace.NodeID(i%2), []trace.NodeID{3, trace.NodeID(4 + i%3)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.WaitSettled(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(nw.Deliveries()); got != messages {
		t.Fatalf("%d deliveries, want %d", got, messages)
	}
	m := nw.Metrics()
	if m.BatchFlushes < 2 {
		t.Errorf("batch flushes = %d, want ≥ 2 (one full, one quiescent)", m.BatchFlushes)
	}

	// The full batch's four tap reports at node 3 share one release time.
	times := make(map[uint64]int)
	for _, tp := range nw.Tuples() {
		if tp.Observer == 3 {
			times[tp.Time]++
		}
	}
	var batched int
	for _, k := range times {
		if k >= 4 {
			batched++
		}
	}
	if batched == 0 {
		t.Errorf("no shared release time among node-3 reports: %v", times)
	}
}

// TestBatchingKeepsCausalOrder: even with mixing, timestamps stay strictly
// increasing along every message's path.
func TestBatchingKeepsCausalOrder(t *testing.T) {
	nw, err := simnet.New(simnet.Config{
		N:              10,
		Compromised:    []trace.NodeID{1, 2, 3},
		BatchThreshold: 3,
		Seed:           9,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()
	for i := 0; i < 40; i++ {
		if _, err := nw.SendRoute(0, []trace.NodeID{1, 2, 3}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.WaitSettled(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for id, mt := range trace.Collate(nw.Tuples()) {
		last := uint64(0)
		for _, r := range mt.Reports {
			if r.Time <= last {
				t.Errorf("msg %d: non-increasing times %v", id, mt.Reports)
				break
			}
			last = r.Time
		}
	}
}

// TestShardCountConfig: explicit shard counts are honored and a width-1
// kernel still settles (the serial reference path).
func TestShardCountConfig(t *testing.T) {
	nw, err := simnet.New(simnet.Config{N: 12, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()
	for i := 0; i < 100; i++ {
		if _, err := nw.SendRoute(0, []trace.NodeID{1, 2, 3, 4, 5}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.WaitSettled(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if m := nw.Metrics(); m.Shards != 1 || m.Events != 500 {
		t.Errorf("metrics = %+v", m)
	}
}

// TestBatchingSurvivesSlowInjection is the regression test for premature
// quiescence flushes: a mix must keep accumulating across injection lulls
// (the kernel easily outpaces any injector), releasing partial batches
// only once WaitSettled declares injection over.
func TestBatchingSurvivesSlowInjection(t *testing.T) {
	nw, err := simnet.New(simnet.Config{
		N:              8,
		Compromised:    []trace.NodeID{3},
		BatchThreshold: 4,
		Shards:         1,
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	defer nw.Close()
	const messages = 12
	for i := 0; i < messages; i++ {
		if _, err := nw.SendRoute(trace.NodeID(i%2), []trace.NodeID{3, 5}, nil); err != nil {
			t.Fatal(err)
		}
		// Let the kernel go fully quiescent between injections.
		time.Sleep(2 * time.Millisecond)
	}
	if err := nw.WaitSettled(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(nw.Deliveries()); got != messages {
		t.Fatalf("%d deliveries, want %d", got, messages)
	}
	// 12 messages through mix 3 (threshold 4) then mix 5: full batches
	// only — 3 flushes at node 3; node 5 receives 4-at-a-time, so 3 more.
	// Premature per-packet flushing would show ~24.
	if m := nw.Metrics(); m.BatchFlushes > messages/4*2 {
		t.Errorf("batch flushes = %d, want ≤ %d (mix degenerated to per-packet flushing)",
			m.BatchFlushes, messages/4*2)
	}
}

func TestNegativeHopDelayRejected(t *testing.T) {
	if _, err := simnet.New(simnet.Config{N: 4, MaxHopDelay: -time.Millisecond}); err == nil {
		t.Error("negative MaxHopDelay accepted")
	}
}
