// Package simnet is an in-process rerouting network testbed built on a
// sharded discrete-event kernel: the transport graph is the clique of
// §3.1, a logical clock timestamps every forwarding step, and compromised
// nodes tap the traffic and report (time, predecessor, successor) tuples —
// exactly the threat model of §4 — into a collector the adversary reads.
//
// Nodes are *virtual*: the kernel spawns one goroutine per shard (default
// pool.Workers()), never one per node, and keeps no per-node state unless
// a node is actively holding traffic. Events — "packet arrives at node v
// at logical time t" — live in per-shard binary heaps keyed by (time, seq)
// and are routed to the shard owning the destination node. Memory and
// goroutine count therefore scale with the number of in-flight messages,
// not with N, which makes million-node systems with sparse traffic cheap.
//
// Forwarding behavior is pluggable (plain source routes, onion layers,
// Crowds coin-flip), so the same testbed executes all protocol substrates
// surveyed in §2 of the paper; an optional threshold-mix batching stage
// (Config.BatchThreshold) holds packets at every node until a batch fills,
// reproducing mix-network timing. Integration tests verify that the
// empirical anonymity degree measured on this testbed matches the exact
// engine.
package simnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"anonmix/internal/faults"
	"anonmix/internal/pool"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// Errors returned by the network.
var (
	// ErrBadConfig reports an invalid network configuration.
	ErrBadConfig = errors.New("simnet: invalid configuration")
	// ErrClosed reports use of a network after Close.
	ErrClosed = errors.New("simnet: network is closed")
	// ErrBadHop reports a forwarder that returned an out-of-range next hop.
	ErrBadHop = errors.New("simnet: forwarder returned invalid next hop")
	// ErrTimeout reports an expired wait.
	ErrTimeout = errors.New("simnet: wait timed out")
	// ErrAbsent reports traffic touching a node outside the live membership
	// at that virtual time (left, or not yet joined).
	ErrAbsent = errors.New("simnet: node is not a live member")
)

// Packet is a message in flight. Forwarders consume routing state (Route
// or Onion) as the packet moves.
type Packet struct {
	// Msg correlates the packet across hops.
	Msg trace.MessageID
	// From is the immediate predecessor (link-layer visible to the
	// receiving node — this is what a compromised node reports).
	From trace.NodeID
	// Route is the remaining plain source route (PlainForwarder).
	Route []trace.NodeID
	// Onion is the remaining layered header (onion.Forwarder).
	Onion []byte
	// Payload is the application data.
	Payload []byte

	// hops counts forwarding steps taken, indexing the deterministic
	// per-hop delay stream.
	hops uint64
	// tries counts delivery attempts into a crashed node on the current
	// link (PolicyRetransmit); it resets whenever the packet is processed
	// by a live node, so the retry budget is per link.
	tries int
}

// Forwarder decides, at each node, where a packet goes next. Implementations
// mutate the packet's routing state (slicing the route, peeling a layer)
// and return the next hop, or trace.Receiver to deliver. The kernel may
// invoke Next from several shard goroutines concurrently, so stateful
// forwarders must be safe for concurrent use (the in-tree implementations
// are).
type Forwarder interface {
	Next(self trace.NodeID, pkt *Packet) (trace.NodeID, error)
}

// PlainForwarder forwards along an explicit source route.
type PlainForwarder struct{}

// Next pops the next hop off the packet's plain route.
func (PlainForwarder) Next(_ trace.NodeID, pkt *Packet) (trace.NodeID, error) {
	if len(pkt.Route) == 0 {
		return trace.Receiver, nil
	}
	next := pkt.Route[0]
	pkt.Route = pkt.Route[1:]
	return next, nil
}

// Delivery records a message arriving at the receiver.
type Delivery struct {
	// Msg is the delivered message.
	Msg trace.MessageID
	// Pred is the last intermediate node (or the sender for direct sends)
	// — what the compromised receiver reports.
	Pred trace.NodeID
	// Payload is the application data as received.
	Payload []byte
	// Time is the logical delivery timestamp.
	Time uint64
}

// ChurnKind names a membership or compromise transition.
type ChurnKind uint8

// The churn transitions.
const (
	// ChurnJoin makes a previously absent node a live member.
	ChurnJoin ChurnKind = iota + 1
	// ChurnLeave removes a live node from the membership.
	ChurnLeave
	// ChurnCompromise converts a live honest node into an adversary node.
	ChurnCompromise
	// ChurnRecover returns a compromised node to honest operation.
	ChurnRecover
)

// String names the churn kind.
func (k ChurnKind) String() string {
	switch k {
	case ChurnJoin:
		return "join"
	case ChurnLeave:
		return "leave"
	case ChurnCompromise:
		return "compromise"
	case ChurnRecover:
		return "recover"
	default:
		return fmt.Sprintf("ChurnKind(%d)", uint8(k))
	}
}

// ChurnEvent is one scheduled transition: at logical time Time, Node
// changes state per Kind. The schedule is fixed before the network starts
// and governs every injection, arrival, and tap decision at logical time
// ≥ Time, so lookups during the run are read-only and race-free no matter
// how shards interleave.
type ChurnEvent struct {
	// Time is the logical timestamp the transition takes effect.
	Time uint64
	// Kind is the transition.
	Kind ChurnKind
	// Node is the transitioning node.
	Node trace.NodeID
}

// Config parameterizes a network.
type Config struct {
	// N is the number of system nodes.
	N int
	// Compromised lists the adversary's nodes; the receiver is always
	// tapped in addition (the paper's default threat model).
	Compromised []trace.NodeID
	// Down lists nodes absent at time zero (future joiners of the Churn
	// schedule). Traffic touching an absent node is dropped with ErrAbsent.
	Down []trace.NodeID
	// Churn schedules membership and compromise transitions at virtual
	// timestamps (piecewise-constant dynamic populations). Events are
	// validated as a per-node state machine: join requires absent, leave
	// and compromise require live, recover requires compromised.
	Churn []ChurnEvent
	// Forwarder is the per-node forwarding behavior (default plain
	// source routing).
	Forwarder Forwarder
	// Buffer is retained for compatibility with the channel-based testbed.
	// The event kernel has unbounded shard queues, so it no longer bounds
	// anything; it is accepted and ignored.
	Buffer int
	// MaxHopDelay, when positive, adds a random logical delay of up to
	// this many nanoseconds-as-ticks at every hop, exercising asynchrony.
	// Delays are a pure function of (Seed, message, hop), so runs are
	// reproducible, and timestamps stay causally ordered along each path
	// regardless.
	MaxHopDelay time.Duration
	// Seed drives the per-hop delay stream and the per-shard batch
	// shuffles. Per-hop delays (and hence every plain/onion run) are
	// reproducible for a fixed seed under any shard count; threshold-mix
	// *batch composition* additionally depends on event arrival order,
	// which is scheduling-dependent when Shards > 1 — pin Shards to 1 for
	// bit-reproducible mix experiments.
	Seed int64
	// Shards is the number of event-kernel shards (worker goroutines).
	// Defaults to pool.Workers().
	Shards int
	// BatchThreshold, when ≥ 2, makes every node a threshold mix: arriving
	// packets are held until BatchThreshold of them are queued at that
	// node, then flushed together in shuffled order with identical release
	// times. Partial batches keep accumulating while the injector is
	// active and are released on kernel quiescence only after WaitSettled
	// or Close declares injection over, so the wait terminates without
	// the mixes degenerating mid-run. Batch composition follows
	// arrival order, so multi-shard mix runs vary with scheduling (see
	// Seed); use Shards = 1 to reproduce exact tuple streams.
	BatchThreshold int
	// LinkLoss is the per-link, per-attempt transmission loss probability
	// in [0, 1]. Every loss is a pure function of (Seed, message, hop,
	// attempt) — see faults.Lost — so lossy runs are reproducible under
	// any shard count, like the per-hop jitter stream.
	LinkLoss float64
	// Crashes schedules fault-injection outages: a crashed node stays a
	// member (injectors may still route through it) but fails to process
	// traffic until it recovers, which is what exercises the reliability
	// policy. Windows per node must not overlap (faults.Plan semantics).
	Crashes []faults.Crash
	// Policy is the delivery-reliability reaction to a lost transmission
	// or a crashed next hop: drop (PolicyNone, the default), per-link
	// retransmission with capped exponential backoff (PolicyRetransmit),
	// or hand the message back to the driver for an end-to-end retry over
	// a fresh path (PolicyReroute; see TakeFailed).
	Policy faults.Policy
	// MaxAttempts bounds transmissions per link under PolicyRetransmit
	// (and is echoed by drivers as the reroute injection budget); 0 means
	// faults.DefaultMaxAttempts. The bound is what makes Settle terminate
	// under 100% loss.
	MaxAttempts int
	// RetryBackoff is the base retransmission timeout in
	// nanoseconds-as-ticks; retry k waits RetryBackoff << min(k,
	// faults.BackoffCap). 0 means faults.DefaultRetryBackoff.
	RetryBackoff time.Duration
}

// Drop causes recorded in DropStats.
const (
	// DropBadHop marks a forwarder returning an out-of-range next hop.
	DropBadHop = "bad-hop"
	// DropForwarder marks a forwarder error (e.g. an onion peel failure).
	DropForwarder = "forwarder"
	// DropAbsent marks traffic routed through a non-member node.
	DropAbsent = "absent"
	// DropCrash marks a packet retired at a crashed node after the policy
	// gave up (or immediately, under PolicyNone).
	DropCrash = "crash"
	// DropLoss marks a packet lost on a link after the policy gave up (or
	// on the first loss, under PolicyNone).
	DropLoss = "loss"
)

// dropSampleCap bounds the ring of sampled drop errors retained for
// diagnostics. Counting is exact; only the examples are sampled.
const dropSampleCap = 16

// DropStats summarizes discarded packets in bounded memory: exact totals
// by cause plus a ring of the most recent example errors. It replaces the
// unbounded per-drop error slice, which at million-node lossy scale
// retained one allocation per drop.
type DropStats struct {
	// Total is the exact number of packets discarded.
	Total uint64
	// ByCause is the exact per-cause breakdown (keys are the Drop*
	// constants).
	ByCause map[string]uint64
	// Samples holds up to dropSampleCap recent example errors, oldest
	// first.
	Samples []error
}

// dropLog is the bounded drop accumulator behind DropStats.
type dropLog struct {
	mu      sync.Mutex
	total   uint64
	byCause map[string]uint64
	ring    [dropSampleCap]error
	next    uint64
}

// add records one drop.
func (d *dropLog) add(cause string, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.total++
	if d.byCause == nil {
		d.byCause = make(map[string]uint64, 4)
	}
	d.byCause[cause]++
	d.ring[d.next%dropSampleCap] = err
	d.next++
}

// snapshot copies the accumulated statistics.
func (d *dropLog) snapshot() DropStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := DropStats{Total: d.total, Samples: d.samplesLocked()}
	if len(d.byCause) > 0 {
		out.ByCause = make(map[string]uint64, len(d.byCause))
		for k, v := range d.byCause {
			out.ByCause[k] = v
		}
	}
	return out
}

// samplesLocked returns the example ring oldest-first.
func (d *dropLog) samplesLocked() []error {
	n := d.next
	if n > dropSampleCap {
		n = dropSampleCap
	}
	out := make([]error, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.ring[(d.next-n+i)%dropSampleCap])
	}
	return out
}

// Failure records a logical message the kernel retired undelivered and
// handed back to the driver (PolicyReroute): the packet's path hit a lost
// link or a crashed node, and end-to-end recovery — a fresh path over the
// live membership — is the driver's job.
type Failure struct {
	// Msg is the failed message.
	Msg trace.MessageID
	// Time is the logical time of the terminal fault.
	Time uint64
	// Cause is the fault class (DropLoss or DropCrash).
	Cause string
}

// Metrics is a snapshot of kernel counters.
type Metrics struct {
	// Shards is the number of kernel shards (worker goroutines).
	Shards int
	// Events is the number of node-arrival events processed so far.
	Events uint64
	// BatchFlushes counts threshold-mix batch flushes (full or quiescent).
	BatchFlushes uint64
	// Churn is the number of scheduled membership/compromise transitions.
	Churn int
	// Retries counts retransmission attempts performed by
	// PolicyRetransmit (link losses and crashed-hop timeouts).
	Retries uint64
	// Dropped is the exact total of discarded packets (see DropStats).
	Dropped uint64
}

// boolSched is a per-node piecewise-constant boolean timeline: the state is
// base before times[0], then vals[i] from times[i] (inclusive) until the
// next transition. Schedules are built once in New and only read afterward.
type boolSched struct {
	base  bool
	times []uint64
	vals  []bool
}

// at evaluates the timeline at logical time t. Schedules hold a handful of
// epoch boundaries, so a linear scan beats binary search in practice.
func (s *boolSched) at(t uint64) bool {
	state := s.base
	for i, tt := range s.times {
		if t < tt {
			break
		}
		state = s.vals[i]
	}
	return state
}

// set appends a transition (times must arrive non-decreasing; a repeat
// timestamp overwrites, last writer wins).
func (s *boolSched) set(t uint64, v bool) {
	if n := len(s.times); n > 0 && s.times[n-1] == t {
		s.vals[n-1] = v
		return
	}
	s.times = append(s.times, t)
	s.vals = append(s.vals, v)
}

// event is one kernel work item: a packet arriving at a node at a logical
// time. seq breaks heap ties so per-shard processing order is stable.
type event struct {
	time uint64
	seq  uint64
	node trace.NodeID
	pkt  Packet
}

// eventHeap is a binary min-heap on (time, seq).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{} // release packet references
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && old.less(l, small) {
			small = l
		}
		if r < n && old.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

// shard owns a partition of the node space: its inbox receives events for
// its nodes from any goroutine, its heap orders them by logical time, and
// its batches hold threshold-mix queues for its nodes.
type shard struct {
	id int

	mu      sync.Mutex
	cond    *sync.Cond
	inbox   []event
	heap    eventHeap
	seq     uint64
	stop    bool
	flushed bool // a quiescence flush has been requested

	// batches maps node → held events, allocated lazily so an idle
	// million-node system costs nothing. Only the owning shard touches a
	// node's queue, outside the shard lock.
	batches map[trace.NodeID][]event
	rng     *rand.Rand
}

// Network is a running testbed. Create with New, start with Start, and
// always Close (Close waits for in-flight messages and all goroutines).
type Network struct {
	cfg         Config
	fwd         Forwarder
	compromised map[trace.NodeID]bool
	jitter      uint64 // MaxHopDelay in ticks (0 = no jitter)

	// down marks nodes absent at time zero; liveSched/compSched hold the
	// per-node churn timelines (only churned nodes have entries). All three
	// are immutable once Start runs, so shard goroutines read them freely.
	down      map[trace.NodeID]bool
	liveSched map[trace.NodeID]*boolSched
	compSched map[trace.NodeID]*boolSched

	// crashSched holds the fault-injection outage timelines (true =
	// crashed), kept apart from liveSched because a crashed node is still
	// a member — churn and crashes are orthogonal axes. Immutable after
	// New. lossProb/policy/maxAttempts/backoffBase mirror the validated
	// reliability configuration.
	crashSched  map[trace.NodeID]*boolSched
	lossProb    float64
	policy      faults.Policy
	maxAttempts int
	backoffBase uint64

	nextMsg atomic.Uint64
	injTime atomic.Uint64 // injection logical clock

	shards  []*shard
	shardWG sync.WaitGroup

	// pending counts events in inboxes and heaps; buffered counts packets
	// held in mix batches. Once draining is set (the caller entered
	// WaitSettled or Close, i.e. injection is over), pending hitting zero
	// with buffered packets remaining triggers a quiescence flush — that
	// is what lets WaitSettled terminate with partial batches. Before
	// draining, partial batches keep accumulating: a transient lull while
	// the injector is still producing must not fire the mixes.
	pending  atomic.Int64
	buffered atomic.Int64
	draining atomic.Bool

	events  atomic.Uint64
	flushes atomic.Uint64
	retries atomic.Uint64

	drops dropLog

	mu         sync.Mutex
	tuples     []trace.Tuple
	deliveries []Delivery
	retryObs   []trace.Tuple
	failures   []Failure

	msgWG sync.WaitGroup // in-flight messages

	started bool
	closed  bool
}

// New validates the configuration and builds a network (not yet running).
func New(cfg Config) (*Network, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("%w: n = %d", ErrBadConfig, cfg.N)
	}
	comp := make(map[trace.NodeID]bool, len(cfg.Compromised))
	for _, id := range cfg.Compromised {
		if int(id) < 0 || int(id) >= cfg.N {
			return nil, fmt.Errorf("%w: compromised node %v", ErrBadConfig, id)
		}
		if comp[id] {
			return nil, fmt.Errorf("%w: duplicate compromised node %v", ErrBadConfig, id)
		}
		comp[id] = true
	}
	if cfg.MaxHopDelay < 0 {
		// A negative duration would wrap through the uint64 tick
		// conversion into a ~2^64 jitter bound and scramble timestamps.
		return nil, fmt.Errorf("%w: MaxHopDelay %v", ErrBadConfig, cfg.MaxHopDelay)
	}
	down := make(map[trace.NodeID]bool, len(cfg.Down))
	for _, id := range cfg.Down {
		if int(id) < 0 || int(id) >= cfg.N {
			return nil, fmt.Errorf("%w: down node %v", ErrBadConfig, id)
		}
		if down[id] {
			return nil, fmt.Errorf("%w: duplicate down node %v", ErrBadConfig, id)
		}
		if comp[id] {
			// An absent node cannot hold adversary state; compromise it
			// after it joins, via the churn schedule.
			return nil, fmt.Errorf("%w: down node %v marked compromised", ErrBadConfig, id)
		}
		down[id] = true
	}
	liveSched, compSched, err := buildChurn(cfg.N, cfg.Churn, down, comp)
	if err != nil {
		return nil, err
	}
	if cfg.LinkLoss < 0 || cfg.LinkLoss > 1 || math.IsNaN(cfg.LinkLoss) {
		return nil, fmt.Errorf("%w: link loss %v outside [0,1]", ErrBadConfig, cfg.LinkLoss)
	}
	if cfg.Policy > faults.PolicyReroute {
		return nil, fmt.Errorf("%w: reliability policy %v", ErrBadConfig, cfg.Policy)
	}
	if cfg.MaxAttempts < 0 {
		return nil, fmt.Errorf("%w: MaxAttempts %d", ErrBadConfig, cfg.MaxAttempts)
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = faults.DefaultMaxAttempts
	}
	if cfg.RetryBackoff < 0 {
		return nil, fmt.Errorf("%w: RetryBackoff %v", ErrBadConfig, cfg.RetryBackoff)
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = faults.DefaultRetryBackoff
	}
	crashSched, err := buildCrashes(cfg.N, cfg.Crashes)
	if err != nil {
		return nil, err
	}
	if cfg.Forwarder == nil {
		cfg.Forwarder = PlainForwarder{}
	}
	if cfg.Shards <= 0 {
		cfg.Shards = pool.Workers()
	}
	if cfg.Shards > cfg.N {
		cfg.Shards = cfg.N
	}
	if cfg.BatchThreshold < 2 {
		cfg.BatchThreshold = 0
	}
	nw := &Network{
		cfg:         cfg,
		fwd:         cfg.Forwarder,
		compromised: comp,
		jitter:      uint64(cfg.MaxHopDelay),
		down:        down,
		liveSched:   liveSched,
		compSched:   compSched,
		crashSched:  crashSched,
		lossProb:    cfg.LinkLoss,
		policy:      cfg.Policy,
		maxAttempts: cfg.MaxAttempts,
		backoffBase: uint64(cfg.RetryBackoff),
		shards:      make([]*shard, cfg.Shards),
	}
	for i := range nw.shards {
		s := &shard{id: i}
		s.cond = sync.NewCond(&s.mu)
		if cfg.BatchThreshold > 0 {
			s.batches = make(map[trace.NodeID][]event)
			s.rng = stats.Fork(cfg.Seed, int64(1_000_003+i))
		}
		nw.shards[i] = s
	}
	return nw, nil
}

// buildChurn validates the churn schedule as a per-node state machine and
// materializes the per-node boolean timelines. Only churned nodes get an
// entry, so a million-node system with a handful of transitions costs a
// handful of map entries.
func buildChurn(n int, churn []ChurnEvent, down, comp map[trace.NodeID]bool) (liveSched, compSched map[trace.NodeID]*boolSched, err error) {
	if len(churn) == 0 {
		return nil, nil, nil
	}
	// Stable order by time keeps same-timestamp events in declaration
	// order, so the state machine below sees them as the caller wrote them.
	sorted := append([]ChurnEvent(nil), churn...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	liveSched = make(map[trace.NodeID]*boolSched)
	compSched = make(map[trace.NodeID]*boolSched)
	live := func(id trace.NodeID) *boolSched {
		s, ok := liveSched[id]
		if !ok {
			s = &boolSched{base: !down[id]}
			liveSched[id] = s
		}
		return s
	}
	compromised := func(id trace.NodeID) *boolSched {
		s, ok := compSched[id]
		if !ok {
			s = &boolSched{base: comp[id]}
			compSched[id] = s
		}
		return s
	}
	for _, ev := range sorted {
		if int(ev.Node) < 0 || int(ev.Node) >= n {
			return nil, nil, fmt.Errorf("%w: churn %s of node %v outside [0,%d)", ErrBadConfig, ev.Kind, ev.Node, n)
		}
		ls, cs := live(ev.Node), compromised(ev.Node)
		isLive, isComp := ls.at(ev.Time), cs.at(ev.Time)
		switch ev.Kind {
		case ChurnJoin:
			if isLive {
				return nil, nil, fmt.Errorf("%w: churn join of live node %v at t=%d", ErrBadConfig, ev.Node, ev.Time)
			}
			ls.set(ev.Time, true)
		case ChurnLeave:
			if !isLive {
				return nil, nil, fmt.Errorf("%w: churn leave of absent node %v at t=%d", ErrBadConfig, ev.Node, ev.Time)
			}
			if isComp {
				// Leaves and compromise are orthogonal axes: shrink the
				// adversary with recover, then leave.
				return nil, nil, fmt.Errorf("%w: churn leave of compromised node %v at t=%d (recover it first)", ErrBadConfig, ev.Node, ev.Time)
			}
			ls.set(ev.Time, false)
		case ChurnCompromise:
			if !isLive || isComp {
				return nil, nil, fmt.Errorf("%w: churn compromise of node %v at t=%d (live=%v, compromised=%v)",
					ErrBadConfig, ev.Node, ev.Time, isLive, isComp)
			}
			cs.set(ev.Time, true)
		case ChurnRecover:
			if !isComp {
				return nil, nil, fmt.Errorf("%w: churn recover of honest node %v at t=%d", ErrBadConfig, ev.Node, ev.Time)
			}
			cs.set(ev.Time, false)
		default:
			return nil, nil, fmt.Errorf("%w: churn kind %v", ErrBadConfig, ev.Kind)
		}
	}
	return liveSched, compSched, nil
}

// buildCrashes validates the fault-injection outage schedule and
// materializes per-node crash timelines (true = crashed). Validation
// reuses the faults.Plan semantics: node IDs in range, recover strictly
// after crash, per-node windows non-overlapping.
func buildCrashes(n int, crashes []faults.Crash) (map[trace.NodeID]*boolSched, error) {
	if len(crashes) == 0 {
		return nil, nil
	}
	plan := faults.Plan{Crashes: crashes}
	if err := plan.Validate(n); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	sorted := append([]faults.Crash(nil), crashes...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Node != sorted[j].Node {
			return sorted[i].Node < sorted[j].Node
		}
		return sorted[i].At < sorted[j].At
	})
	out := make(map[trace.NodeID]*boolSched)
	for _, c := range sorted {
		s, ok := out[c.Node]
		if !ok {
			s = &boolSched{}
			out[c.Node] = s
		}
		s.set(c.At, true)
		if c.Recover != 0 {
			s.set(c.Recover, false)
		}
	}
	return out, nil
}

// isLive reports membership of a node at logical time t.
func (nw *Network) isLive(id trace.NodeID, t uint64) bool {
	if s := nw.liveSched[id]; s != nil {
		return s.at(t)
	}
	return !nw.down[id]
}

// isCrashed reports a fault-injection outage at logical time t. Crashes
// are orthogonal to membership: a crashed node is still a member, it just
// fails to process traffic until it recovers.
func (nw *Network) isCrashed(id trace.NodeID, t uint64) bool {
	if s := nw.crashSched[id]; s != nil {
		return s.at(t)
	}
	return false
}

// isCompromised reports whether the adversary taps a node at logical time
// t. A churn schedule makes the answer time-phased; without one this is
// the static compromised set.
func (nw *Network) isCompromised(id trace.NodeID, t uint64) bool {
	if s := nw.compSched[id]; s != nil {
		return s.at(t)
	}
	return nw.compromised[id]
}

// Start launches the shard goroutines (one per shard, not per node).
func (nw *Network) Start() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.started || nw.closed {
		return
	}
	nw.started = true
	for _, s := range nw.shards {
		nw.shardWG.Add(1)
		go nw.runShard(s)
	}
}

// shardFor maps a node to its owning shard.
func (nw *Network) shardFor(id trace.NodeID) *shard {
	return nw.shards[int(id)%len(nw.shards)]
}

// schedule enqueues an event into the owning shard's inbox.
func (nw *Network) schedule(ev event) {
	nw.pending.Add(1)
	s := nw.shardFor(ev.node)
	s.mu.Lock()
	s.seq++
	ev.seq = s.seq
	s.inbox = append(s.inbox, ev)
	s.cond.Signal()
	s.mu.Unlock()
}

// chunk bounds how many heap events a shard processes per lock acquisition.
const chunk = 256

// runShard is the shard main loop: drain the inbox into the heap, pop a
// chunk of locally-oldest events, process it outside the lock.
//
// Without batching, processing order within a chunk is irrelevant —
// messages are independent and per-path causality is carried by the event
// times themselves. With threshold-mix batching the chunk shrinks to one
// event so that a processed event's successors are merged into the heap
// before the next pop: on a single shard that makes processing order
// globally nondecreasing in logical time (every successor's time exceeds
// its parent's), i.e. batches fill strictly in arrival-time order, which
// is the mix model.
func (nw *Network) runShard(s *shard) {
	defer nw.shardWG.Done()
	maxChunk := chunk
	if nw.cfg.BatchThreshold > 0 {
		maxChunk = 1
	}
	var local []event
	for {
		s.mu.Lock()
		for !s.stop && !s.flushed && len(s.inbox) == 0 && s.heap.Len() == 0 {
			s.cond.Wait()
		}
		if s.stop && len(s.inbox) == 0 && s.heap.Len() == 0 {
			s.mu.Unlock()
			return
		}
		flush := s.flushed
		s.flushed = false
		for i := range s.inbox {
			s.heap.push(s.inbox[i])
			// Zero the drained slot so the retained backing array does not
			// pin packet payloads after a traffic burst (pop does the same
			// for heap slots).
			s.inbox[i] = event{}
		}
		s.inbox = s.inbox[:0]
		local = local[:0]
		for s.heap.Len() > 0 && len(local) < maxChunk {
			local = append(local, s.heap.pop())
		}
		s.mu.Unlock()
		if flush {
			nw.flushShard(s)
		}
		for _, ev := range local {
			nw.process(s, ev)
		}
	}
}

func (h eventHeap) Len() int { return len(h) }

// process handles one node-arrival event.
func (nw *Network) process(s *shard, ev event) {
	nw.events.Add(1)
	if nw.cfg.BatchThreshold > 0 {
		// Threshold mix: hold the packet at this node until the batch
		// fills. Only the owning shard touches the queue, so no lock.
		q := append(s.batches[ev.node], ev)
		if len(q) >= nw.cfg.BatchThreshold {
			delete(s.batches, ev.node)
			nw.buffered.Add(int64(1 - len(q)))
			nw.flushBatch(s, q)
		} else {
			s.batches[ev.node] = q
			nw.buffered.Add(1)
		}
		nw.eventDone()
		return
	}
	nw.hopAt(ev.node, ev.pkt, ev.time)
	nw.eventDone()
}

// eventDone retires one event and triggers the quiescence flush when the
// kernel has drained, injection is over, and packets are still held in
// partial batches.
func (nw *Network) eventDone() {
	if nw.pending.Add(-1) == 0 && nw.draining.Load() && nw.buffered.Load() > 0 {
		nw.requestFlush()
	}
}

// requestFlush asks every shard to release its partial batches.
func (nw *Network) requestFlush() {
	for _, s := range nw.shards {
		s.mu.Lock()
		s.flushed = true
		s.cond.Signal()
		s.mu.Unlock()
	}
}

// drain marks the end of injection and arms the quiescence flush. The
// draining store and the pending check cross the eventDone decrement from
// the other side, so whichever of the two observes the quiescent state
// fires the flush — it cannot be lost between them.
func (nw *Network) drain() {
	nw.draining.Store(true)
	if nw.pending.Load() == 0 && nw.buffered.Load() > 0 {
		nw.requestFlush()
	}
}

// flushShard releases every partial batch the shard holds (quiescence
// flush — the mix "fires on timeout"). Batches flush in node order:
// flushBatch consumes the shard's RNG for the departure shuffle, so a
// map-ordered sweep here would leak iteration order into the draw
// sequence and break per-seed bit-reproducibility.
func (nw *Network) flushShard(s *shard) {
	nodes := make([]trace.NodeID, 0, len(s.batches))
	for node := range s.batches {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, node := range nodes {
		q := s.batches[node]
		delete(s.batches, node)
		nw.buffered.Add(int64(-len(q)))
		nw.flushBatch(s, q)
	}
}

// flushBatch releases a batch: the packets leave in shuffled order with a
// common release time (the batch's latest arrival), which is what unlinks
// arrival from departure order in a threshold mix.
func (nw *Network) flushBatch(s *shard, q []event) {
	nw.flushes.Add(1)
	release := uint64(0)
	for _, ev := range q {
		if ev.time > release {
			release = ev.time
		}
	}
	s.rng.Shuffle(len(q), func(i, j int) { q[i], q[j] = q[j], q[i] })
	for _, ev := range q {
		nw.hopAt(ev.node, ev.pkt, release)
	}
}

// hopAt executes the forwarding step of a packet at a node at logical time
// t: asks the forwarder for the next hop, taps the traffic if the node is
// compromised, and schedules the next arrival (or delivers). A crashed
// node hands the packet to the reliability policy instead of processing
// it — including packets released from a partial mix batch, which route
// through here as well, so a crashing mix never leaks its held traffic.
func (nw *Network) hopAt(self trace.NodeID, pkt Packet, t uint64) {
	if !nw.isLive(self, t) {
		// The packet reached a node outside the live membership (left, or
		// not yet joined) — the injector routed through a non-member.
		nw.drop(pkt.Msg, DropAbsent, fmt.Errorf("simnet: drop msg %d at %v: %w: %v at t=%d",
			pkt.Msg, self, ErrAbsent, self, t))
		return
	}
	if nw.isCrashed(self, t) {
		// Fault-injection outage. PolicyRetransmit models the upstream
		// node timing out and retransmitting: the arrival is rescheduled
		// after a capped exponential backoff, bounded by the per-link
		// budget. The upstream node's own predecessor is no longer in the
		// packet, so crash retries add no adversary observation (unlike
		// link-loss retries, where the retransmitting node is local).
		if nw.policy == faults.PolicyRetransmit && pkt.tries+1 < nw.maxAttempts {
			delay := faults.Backoff(nw.backoffBase, uint64(pkt.tries))
			pkt.tries++
			nw.retries.Add(1)
			nw.schedule(event{time: t + delay, node: self, pkt: pkt})
			return
		}
		nw.fail(pkt.Msg, self, t, DropCrash)
		return
	}
	pkt.tries = 0
	next, err := nw.fwd.Next(self, &pkt)
	cause := DropForwarder
	if err == nil && next != trace.Receiver && (int(next) < 0 || int(next) >= nw.cfg.N) {
		err = fmt.Errorf("%w: %v at node %v", ErrBadHop, next, self)
		cause = DropBadHop
	}
	if err != nil {
		nw.drop(pkt.Msg, cause, fmt.Errorf("simnet: drop msg %d at %v: %w", pkt.Msg, self, err))
		return
	}
	if nw.isCompromised(self, t) {
		nw.mu.Lock()
		nw.tuples = append(nw.tuples, trace.Tuple{
			Time: t, Observer: self, Msg: pkt.Msg, Pred: pkt.From, Succ: next,
		})
		nw.mu.Unlock()
	}
	pred := pkt.From
	pkt.From = self
	pkt.hops++
	tA, ok := nw.linkUp(self, next, pred, pkt, t)
	if !ok {
		return
	}
	t2 := tA + 1 + nw.hopJitter(pkt.Msg, pkt.hops)
	if next == trace.Receiver {
		nw.deliver(pkt, t2)
		return
	}
	nw.schedule(event{time: t2, node: next, pkt: pkt})
}

// linkUp resolves the per-attempt loss draws for the transmission of pkt
// from self toward next starting at logical time t. It returns the time
// of the successful attempt (advanced by retransmission backoffs) and
// true; or, when the policy gives the packet up, it retires the message
// (drop or reroute handoff) and returns false — so exactly one of
// schedule/deliver/drop/handoff happens per transmission and the
// in-flight count is conserved.
func (nw *Network) linkUp(self, next, pred trace.NodeID, pkt Packet, t uint64) (uint64, bool) {
	if nw.lossProb <= 0 {
		return t, true
	}
	for attempt := uint64(0); ; attempt++ {
		if !faults.Lost(nw.cfg.Seed, pkt.Msg, pkt.hops, attempt, nw.lossProb) {
			return t, true
		}
		if nw.policy != faults.PolicyRetransmit || int(attempt)+1 >= nw.maxAttempts {
			nw.fail(pkt.Msg, self, t, DropLoss)
			return 0, false
		}
		// Retransmit over the same link. The retransmitting node re-handles
		// the packet, so a compromised self collects a duplicate
		// observation — kept out of the main tuple stream (a second report
		// from the same observer would break simple-path collation) and
		// exposed via RetryObservations for the degraded-H accounting. The
		// injection link (hops == 0... the sender's own first transmission)
		// is exempt: the sender observing itself leaks nothing.
		if pkt.hops > 0 && nw.isCompromised(self, t) {
			nw.mu.Lock()
			nw.retryObs = append(nw.retryObs, trace.Tuple{
				Time: t, Observer: self, Msg: pkt.Msg, Pred: pred, Succ: next,
			})
			nw.mu.Unlock()
		}
		nw.retries.Add(1)
		t += faults.Backoff(nw.backoffBase, attempt)
	}
}

// drop retires a packet into the bounded drop statistics.
func (nw *Network) drop(msg trace.MessageID, cause string, err error) {
	nw.drops.add(cause, err)
	nw.msgWG.Done()
}

// fail retires a packet that hit a terminal fault: under PolicyReroute the
// message is handed back to the driver for an end-to-end retry, otherwise
// it is dropped.
func (nw *Network) fail(msg trace.MessageID, at trace.NodeID, t uint64, cause string) {
	if nw.policy == faults.PolicyReroute {
		nw.mu.Lock()
		nw.failures = append(nw.failures, Failure{Msg: msg, Time: t, Cause: cause})
		nw.mu.Unlock()
		nw.msgWG.Done()
		return
	}
	nw.drop(msg, cause, fmt.Errorf("simnet: drop msg %d at %v: %s at t=%d", msg, at, cause, t))
}

// deliver records the receiver's tap and the delivery, and retires the
// message. The receiver is always compromised (the paper's default threat
// model); whether the adversary *uses* its report is the analyst's choice.
func (nw *Network) deliver(pkt Packet, t uint64) {
	nw.mu.Lock()
	nw.tuples = append(nw.tuples, trace.Tuple{
		Time: t, Observer: trace.Receiver, Msg: pkt.Msg,
		Pred: pkt.From, Succ: trace.Receiver,
	})
	nw.deliveries = append(nw.deliveries, Delivery{
		Msg: pkt.Msg, Pred: pkt.From, Payload: pkt.Payload, Time: t,
	})
	nw.mu.Unlock()
	nw.msgWG.Done()
}

// hopJitter returns the deterministic extra delay for a given (message,
// hop) pair: a SplitMix64 hash of the seed and the pair, reduced to
// [0, MaxHopDelay). Being a pure function, it is reproducible regardless
// of shard scheduling.
func (nw *Network) hopJitter(msg trace.MessageID, hop uint64) uint64 {
	if nw.jitter == 0 {
		return 0
	}
	z := uint64(nw.cfg.Seed) + uint64(msg)*0x9E3779B97F4A7C15 + hop*0xD1B54A32D192ED03
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return z % nw.jitter
}

// Inject introduces a message at the sender and forwards it to first
// (trace.Receiver for a direct send). The sender performs its own first
// hop, so the link-layer predecessor seen by the first intermediate is the
// sender — exactly the paper's model. The message ID is returned.
func (nw *Network) Inject(sender, first trace.NodeID, pkt Packet) (trace.MessageID, error) {
	if int(sender) < 0 || int(sender) >= nw.cfg.N {
		return 0, fmt.Errorf("%w: sender %v", ErrBadConfig, sender)
	}
	if first != trace.Receiver && (int(first) < 0 || int(first) >= nw.cfg.N) {
		return 0, fmt.Errorf("%w: first hop %v", ErrBadConfig, first)
	}
	// The closed check and the in-flight increment must be atomic with
	// respect to Close, which sets the flag before draining msgWG.
	nw.mu.Lock()
	if nw.closed || !nw.started {
		nw.mu.Unlock()
		return 0, ErrClosed
	}
	nw.msgWG.Add(1)
	nw.mu.Unlock()
	pkt.Msg = trace.MessageID(nw.nextMsg.Add(1))
	pkt.From = sender
	pkt.hops = 0
	t0 := nw.injTime.Add(1)
	if !nw.isLive(sender, t0) {
		nw.msgWG.Done()
		return 0, fmt.Errorf("%w: sender %v at t=%d", ErrAbsent, sender, t0)
	}
	tA, ok := nw.linkUp(sender, first, sender, pkt, t0)
	if !ok {
		// The injection-link transmission was lost and the policy gave the
		// message up; the fault is already recorded (drop or reroute
		// handoff), so the injection itself succeeded.
		return pkt.Msg, nil
	}
	t := tA + nw.hopJitter(pkt.Msg, 0)
	if first == trace.Receiver {
		nw.deliver(pkt, t+1)
	} else {
		nw.schedule(event{time: t, node: first, pkt: pkt})
	}
	return pkt.Msg, nil
}

// SendRoute sends a payload along an explicit source route of intermediate
// nodes (possibly empty for a direct send) using plain routing state.
func (nw *Network) SendRoute(sender trace.NodeID, route []trace.NodeID, payload []byte) (trace.MessageID, error) {
	first := trace.Receiver
	rest := []trace.NodeID(nil)
	if len(route) > 0 {
		first = route[0]
		rest = append(rest, route[1:]...)
	}
	return nw.Inject(sender, first, Packet{Route: rest, Payload: payload})
}

// AdvanceTime raises the injection clock to at least t, so every later
// injection carries a logical timestamp ≥ t. Together with Settle it lets
// a driver place traffic phases on disjoint virtual-time windows with the
// churn schedule's transitions on the boundaries.
func (nw *Network) AdvanceTime(t uint64) {
	for {
		cur := nw.injTime.Load()
		if cur >= t || nw.injTime.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Settle waits like WaitSettled — every in-flight message delivered or
// dropped, partial threshold-mix batches quiescence-flushed — but re-arms
// the network for further injection afterward: the mix "fires on timeout"
// at the end of a traffic phase, and the next phase accumulates fresh
// batches instead of inheriting the drained state.
func (nw *Network) Settle(timeout time.Duration) error {
	if err := nw.WaitSettled(timeout); err != nil {
		return err
	}
	// Nothing is pending or buffered here, so clearing the flag cannot race
	// a quiescence check.
	nw.draining.Store(false)
	return nil
}

// WaitSettled blocks until every injected message has been delivered or
// dropped, or the timeout expires. Calling it declares injection finished:
// with batching enabled, partial threshold-mix batches are released on
// kernel quiescence from this point on (the mix "fires on timeout"), so
// the wait terminates.
func (nw *Network) WaitSettled(timeout time.Duration) error {
	nw.drain()
	done := make(chan struct{})
	go func() {
		nw.msgWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("%w: messages still in flight after %v", ErrTimeout, timeout)
	}
}

// Tuples returns a snapshot of every report collected so far, in collection
// order. The caller owns the returned slice.
func (nw *Network) Tuples() []trace.Tuple {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return append([]trace.Tuple(nil), nw.tuples...)
}

// Deliveries returns a snapshot of receiver-side deliveries.
func (nw *Network) Deliveries() []Delivery {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return append([]Delivery(nil), nw.deliveries...)
}

// Dropped returns sampled errors of discarded packets (up to
// dropSampleCap recent examples, oldest first). It remains the quick
// "anything wrong?" view — empty exactly when no packet was dropped — but
// the exact accounting lives in DropStats, which is bounded no matter how
// many packets a million-node lossy run discards.
func (nw *Network) Dropped() []error {
	nw.drops.mu.Lock()
	defer nw.drops.mu.Unlock()
	return nw.drops.samplesLocked()
}

// DropStats returns the bounded drop accounting: exact totals by cause
// plus the sampled example ring.
func (nw *Network) DropStats() DropStats {
	return nw.drops.snapshot()
}

// RetryObservations returns the duplicate observations compromised nodes
// collected from link-loss retransmissions (PolicyRetransmit), in
// collection order. They are kept out of Tuples because a second report
// from the same (message, observer) pair would break the analyst's
// simple-path collation; the degraded-H accounting folds them in
// explicitly. The caller owns the slice.
func (nw *Network) RetryObservations() []trace.Tuple {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return append([]trace.Tuple(nil), nw.retryObs...)
}

// TakeFailed drains the reroute handoff list: messages retired
// undelivered under PolicyReroute since the last call, sorted by message
// ID so a driver's retry loop is deterministic under any shard
// interleaving. Call it after Settle, re-inject with fresh paths, settle
// again, and repeat until it returns nothing or the attempt budget is
// spent.
func (nw *Network) TakeFailed() []Failure {
	nw.mu.Lock()
	out := nw.failures
	nw.failures = nil
	nw.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Msg < out[j].Msg })
	return out
}

// Metrics returns a snapshot of the kernel counters.
func (nw *Network) Metrics() Metrics {
	return Metrics{
		Shards:       len(nw.shards),
		Events:       nw.events.Load(),
		BatchFlushes: nw.flushes.Load(),
		Churn:        len(nw.cfg.Churn),
		Retries:      nw.retries.Load(),
		Dropped:      nw.drops.snapshot().Total,
	}
}

// Close waits for in-flight messages, then stops the shard goroutines. It
// is idempotent. The network cannot be restarted.
func (nw *Network) Close() {
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return
	}
	nw.closed = true
	started := nw.started
	nw.mu.Unlock()

	if started {
		// After msgWG drains, no event is pending anywhere (the in-flight
		// count is released only at delivery or drop, and partial batches
		// flush on quiescence once drain() arms it), so the shards can be
		// stopped safely.
		nw.drain()
		nw.msgWG.Wait()
		for _, s := range nw.shards {
			s.mu.Lock()
			s.stop = true
			s.cond.Signal()
			s.mu.Unlock()
		}
		nw.shardWG.Wait()
	}
}

// Interface compliance.
var _ Forwarder = PlainForwarder{}
