// Package simnet is an in-process rerouting network testbed: every node of
// the anonymous communication system runs as a goroutine with an inbox
// channel, the transport graph is the clique of §3.1, and a monotone
// logical clock timestamps every forwarding step. Compromised nodes tap
// the traffic and report (time, predecessor, successor) tuples — exactly
// the threat model of §4 — into a collector the adversary reads.
//
// Forwarding behavior is pluggable (plain source routes, onion layers,
// Crowds coin-flip), so the same testbed executes all protocol substrates
// surveyed in §2 of the paper. Integration tests verify that the empirical
// anonymity degree measured on this testbed matches the exact engine.
package simnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

// Errors returned by the network.
var (
	// ErrBadConfig reports an invalid network configuration.
	ErrBadConfig = errors.New("simnet: invalid configuration")
	// ErrClosed reports use of a network after Close.
	ErrClosed = errors.New("simnet: network is closed")
	// ErrBadHop reports a forwarder that returned an out-of-range next hop.
	ErrBadHop = errors.New("simnet: forwarder returned invalid next hop")
	// ErrTimeout reports an expired wait.
	ErrTimeout = errors.New("simnet: wait timed out")
)

// Packet is a message in flight. Forwarders consume routing state (Route
// or Onion) as the packet moves.
type Packet struct {
	// Msg correlates the packet across hops.
	Msg trace.MessageID
	// From is the immediate predecessor (link-layer visible to the
	// receiving node — this is what a compromised node reports).
	From trace.NodeID
	// Route is the remaining plain source route (PlainForwarder).
	Route []trace.NodeID
	// Onion is the remaining layered header (onion.Forwarder).
	Onion []byte
	// Payload is the application data.
	Payload []byte
}

// Forwarder decides, at each node, where a packet goes next. Implementations
// mutate the packet's routing state (slicing the route, peeling a layer)
// and return the next hop, or trace.Receiver to deliver.
type Forwarder interface {
	Next(self trace.NodeID, pkt *Packet) (trace.NodeID, error)
}

// PlainForwarder forwards along an explicit source route.
type PlainForwarder struct{}

// Next pops the next hop off the packet's plain route.
func (PlainForwarder) Next(_ trace.NodeID, pkt *Packet) (trace.NodeID, error) {
	if len(pkt.Route) == 0 {
		return trace.Receiver, nil
	}
	next := pkt.Route[0]
	pkt.Route = pkt.Route[1:]
	return next, nil
}

// Delivery records a message arriving at the receiver.
type Delivery struct {
	// Msg is the delivered message.
	Msg trace.MessageID
	// Pred is the last intermediate node (or the sender for direct sends)
	// — what the compromised receiver reports.
	Pred trace.NodeID
	// Payload is the application data as received.
	Payload []byte
	// Time is the logical delivery timestamp.
	Time uint64
}

// Config parameterizes a network.
type Config struct {
	// N is the number of system nodes.
	N int
	// Compromised lists the adversary's nodes; the receiver is always
	// tapped in addition (the paper's default threat model).
	Compromised []trace.NodeID
	// Forwarder is the per-node forwarding behavior (default plain
	// source routing).
	Forwarder Forwarder
	// Buffer is the per-node inbox capacity (default 1024). Sends into a
	// full inbox block, providing backpressure; keep the number of
	// messages in flight below this bound.
	Buffer int
	// MaxHopDelay, when positive, adds a uniform random delay up to this
	// bound at every hop, exercising asynchrony. Timestamps stay causally
	// ordered along each path regardless.
	MaxHopDelay time.Duration
	// Seed drives the per-node delay generators.
	Seed int64
}

// Network is a running testbed. Create with New, start with Start, and
// always Close (Close waits for in-flight messages and all goroutines).
type Network struct {
	cfg         Config
	fwd         Forwarder
	compromised map[trace.NodeID]bool

	clock   atomic.Uint64
	nextMsg atomic.Uint64

	inboxes []chan Packet
	rcvBox  chan Packet

	mu         sync.Mutex
	cond       *sync.Cond
	tuples     []trace.Tuple
	deliveries []Delivery
	dropped    []error

	msgWG  sync.WaitGroup // in-flight messages
	nodeWG sync.WaitGroup // node + receiver goroutines

	started bool
	closed  bool
}

// New validates the configuration and builds a network (not yet running).
func New(cfg Config) (*Network, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("%w: n = %d", ErrBadConfig, cfg.N)
	}
	comp := make(map[trace.NodeID]bool, len(cfg.Compromised))
	for _, id := range cfg.Compromised {
		if int(id) < 0 || int(id) >= cfg.N {
			return nil, fmt.Errorf("%w: compromised node %v", ErrBadConfig, id)
		}
		if comp[id] {
			return nil, fmt.Errorf("%w: duplicate compromised node %v", ErrBadConfig, id)
		}
		comp[id] = true
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1024
	}
	if cfg.Forwarder == nil {
		cfg.Forwarder = PlainForwarder{}
	}
	nw := &Network{
		cfg:         cfg,
		fwd:         cfg.Forwarder,
		compromised: comp,
		inboxes:     make([]chan Packet, cfg.N),
		rcvBox:      make(chan Packet, cfg.Buffer),
	}
	nw.cond = sync.NewCond(&nw.mu)
	for i := range nw.inboxes {
		nw.inboxes[i] = make(chan Packet, cfg.Buffer)
	}
	return nw, nil
}

// Start launches one goroutine per node plus the receiver.
func (nw *Network) Start() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.started || nw.closed {
		return
	}
	nw.started = true
	for i := 0; i < nw.cfg.N; i++ {
		id := trace.NodeID(i)
		rng := stats.Fork(nw.cfg.Seed, int64(i))
		nw.nodeWG.Add(1)
		go func() {
			defer nw.nodeWG.Done()
			for pkt := range nw.inboxes[id] {
				nw.hop(id, pkt, func() {
					if nw.cfg.MaxHopDelay > 0 {
						time.Sleep(time.Duration(rng.Int63n(int64(nw.cfg.MaxHopDelay))))
					}
				})
			}
		}()
	}
	nw.nodeWG.Add(1)
	go func() {
		defer nw.nodeWG.Done()
		for pkt := range nw.rcvBox {
			t := nw.clock.Add(1)
			nw.mu.Lock()
			// The receiver is compromised: it reports its predecessor.
			nw.tuples = append(nw.tuples, trace.Tuple{
				Time: t, Observer: trace.Receiver, Msg: pkt.Msg,
				Pred: pkt.From, Succ: trace.Receiver,
			})
			nw.deliveries = append(nw.deliveries, Delivery{
				Msg: pkt.Msg, Pred: pkt.From, Payload: pkt.Payload, Time: t,
			})
			nw.cond.Broadcast()
			nw.mu.Unlock()
			nw.msgWG.Done()
		}
	}()
}

// hop processes one packet at one node.
func (nw *Network) hop(self trace.NodeID, pkt Packet, delay func()) {
	delay()
	t := nw.clock.Add(1)
	next, err := nw.fwd.Next(self, &pkt)
	if err == nil && next != trace.Receiver && (int(next) < 0 || int(next) >= nw.cfg.N) {
		err = fmt.Errorf("%w: %v at node %v", ErrBadHop, next, self)
	}
	if err != nil {
		nw.mu.Lock()
		nw.dropped = append(nw.dropped, fmt.Errorf("simnet: drop msg %d at %v: %w", pkt.Msg, self, err))
		nw.cond.Broadcast()
		nw.mu.Unlock()
		nw.msgWG.Done()
		return
	}
	if nw.compromised[self] {
		nw.mu.Lock()
		nw.tuples = append(nw.tuples, trace.Tuple{
			Time: t, Observer: self, Msg: pkt.Msg, Pred: pkt.From, Succ: next,
		})
		nw.mu.Unlock()
	}
	pkt.From = self
	if next == trace.Receiver {
		nw.rcvBox <- pkt
		return
	}
	nw.inboxes[next] <- pkt
}

// Inject introduces a message at the sender and forwards it to first
// (trace.Receiver for a direct send). The sender performs its own first
// hop, so the link-layer predecessor seen by the first intermediate is the
// sender — exactly the paper's model. The message ID is returned.
func (nw *Network) Inject(sender, first trace.NodeID, pkt Packet) (trace.MessageID, error) {
	if int(sender) < 0 || int(sender) >= nw.cfg.N {
		return 0, fmt.Errorf("%w: sender %v", ErrBadConfig, sender)
	}
	if first != trace.Receiver && (int(first) < 0 || int(first) >= nw.cfg.N) {
		return 0, fmt.Errorf("%w: first hop %v", ErrBadConfig, first)
	}
	// The closed check and the in-flight increment must be atomic with
	// respect to Close, which sets the flag before draining msgWG.
	nw.mu.Lock()
	if nw.closed || !nw.started {
		nw.mu.Unlock()
		return 0, ErrClosed
	}
	nw.msgWG.Add(1)
	nw.mu.Unlock()
	pkt.Msg = trace.MessageID(nw.nextMsg.Add(1))
	pkt.From = sender
	if first == trace.Receiver {
		nw.rcvBox <- pkt
	} else {
		nw.inboxes[first] <- pkt
	}
	return pkt.Msg, nil
}

// SendRoute sends a payload along an explicit source route of intermediate
// nodes (possibly empty for a direct send) using plain routing state.
func (nw *Network) SendRoute(sender trace.NodeID, route []trace.NodeID, payload []byte) (trace.MessageID, error) {
	first := trace.Receiver
	rest := []trace.NodeID(nil)
	if len(route) > 0 {
		first = route[0]
		rest = append(rest, route[1:]...)
	}
	return nw.Inject(sender, first, Packet{Route: rest, Payload: payload})
}

// WaitSettled blocks until every injected message has been delivered or
// dropped, or the timeout expires.
func (nw *Network) WaitSettled(timeout time.Duration) error {
	done := make(chan struct{})
	go func() {
		nw.msgWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("%w: messages still in flight after %v", ErrTimeout, timeout)
	}
}

// Tuples returns a snapshot of every report collected so far, in collection
// order. The caller owns the returned slice.
func (nw *Network) Tuples() []trace.Tuple {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return append([]trace.Tuple(nil), nw.tuples...)
}

// Deliveries returns a snapshot of receiver-side deliveries.
func (nw *Network) Deliveries() []Delivery {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return append([]Delivery(nil), nw.deliveries...)
}

// Dropped returns the errors of packets discarded by forwarders.
func (nw *Network) Dropped() []error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return append([]error(nil), nw.dropped...)
}

// Close waits for in-flight messages, then stops all goroutines. It is
// idempotent. The network cannot be restarted.
func (nw *Network) Close() {
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return
	}
	nw.closed = true
	started := nw.started
	nw.mu.Unlock()

	if started {
		// After msgWG drains, no node is mid-hop (the in-flight count is
		// released only at delivery or drop), so every goroutine is idle
		// on its inbox and the channels can be closed safely.
		nw.msgWG.Wait()
		for _, ch := range nw.inboxes {
			close(ch)
		}
		close(nw.rcvBox)
		nw.nodeWG.Wait()
	}
}

// Interface compliance.
var _ Forwarder = PlainForwarder{}
