package theory

import (
	"errors"
	"math"
	"testing"

	"anonmix/internal/combin"
	"anonmix/internal/dist"
)

func TestFixedSimpleC1Args(t *testing.T) {
	if _, err := FixedSimpleC1(4, 1); !errors.Is(err, ErrBadArgs) {
		t.Errorf("n=4 err = %v", err)
	}
	if _, err := FixedSimpleC1(100, -1); !errors.Is(err, ErrBadArgs) {
		t.Errorf("l=-1 err = %v", err)
	}
	if _, err := FixedSimpleC1(100, 100); !errors.Is(err, ErrBadArgs) {
		t.Errorf("l=N err = %v", err)
	}
}

func TestFixedSimpleC1KnownValues(t *testing.T) {
	h0, err := FixedSimpleC1(100, 0)
	if err != nil || h0 != 0 {
		t.Errorf("l=0: %v, %v", h0, err)
	}
	want12 := 98.0 / 100 * math.Log2(98)
	for _, l := range []int{1, 2} {
		h, err := FixedSimpleC1(100, l)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(h-want12) > 1e-12 {
			t.Errorf("l=%d: %v, want %v", l, h, want12)
		}
	}
	h3, err := FixedSimpleC1(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	want3 := (97*math.Log2(98) + math.Log2(97)) / 100
	if math.Abs(h3-want3) > 1e-12 {
		t.Errorf("l=3: %v, want %v", h3, want3)
	}
}

// TestC1MatchesFixedSimple: the general C=1 formula specializes to the
// Theorem-1 piecewise form on point-mass distributions.
func TestC1MatchesFixedSimple(t *testing.T) {
	for _, n := range []int{8, 20, 100, 333} {
		for l := 0; l <= n-1; l += 1 + n/30 {
			f, err := dist.NewFixed(l)
			if err != nil {
				t.Fatal(err)
			}
			got, err := C1(n, f)
			if err != nil {
				t.Fatal(err)
			}
			want, err := FixedSimpleC1(n, l)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("n=%d l=%d: C1 %v, FixedSimpleC1 %v", n, l, got, want)
			}
		}
	}
}

func TestC1Validation(t *testing.T) {
	u, err := dist.NewUniform(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := C1(4, u); !errors.Is(err, ErrBadArgs) {
		t.Errorf("small n err = %v", err)
	}
	wide, err := dist.NewUniform(0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := C1(50, wide); !errors.Is(err, ErrBadArgs) {
		t.Errorf("support > N-1 err = %v", err)
	}
}

func TestUniformC1MeanOnly(t *testing.T) {
	// For a ≥ 3 the uniform value equals MeanOnlyC1 at the same mean.
	for _, tc := range []struct{ a, b int }{{3, 7}, {4, 36}, {10, 30}, {51, 71}} {
		hu, err := UniformC1(100, tc.a, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		hm, err := MeanOnlyC1(100, float64(tc.a+tc.b)/2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(hu-hm) > 1e-10 {
			t.Errorf("U(%d,%d): %v vs MeanOnly %v", tc.a, tc.b, hu, hm)
		}
	}
	// Fractional means are allowed in the reduced form.
	if _, err := MeanOnlyC1(100, 7.5); err != nil {
		t.Errorf("fractional mean: %v", err)
	}
	if _, err := MeanOnlyC1(100, 2.5); !errors.Is(err, ErrBadArgs) {
		t.Errorf("mean < 3 err = %v", err)
	}
	if _, err := MeanOnlyC1(4, 3); !errors.Is(err, ErrBadArgs) {
		t.Errorf("small n err = %v", err)
	}
}

func TestGeometricC1(t *testing.T) {
	h, err := GeometricC1(100, 0.75, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if h <= 0 || h >= math.Log2(100) {
		t.Errorf("GeometricC1 = %v outside (0, log2 100)", h)
	}
	// Higher forwarding probability (longer expected paths) should beat a
	// very short-path configuration in this regime.
	low, err := GeometricC1(100, 0.1, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !(h > low) {
		t.Errorf("pf=0.75 (%v) should exceed pf=0.1 (%v)", h, low)
	}
	if _, err := GeometricC1(100, 1.2, 1, 99); err == nil {
		t.Error("bad pf accepted")
	}
}

// TestGeometricClosedFormMatchesSummation: the loop-free Theorem-2 form
// agrees with the truncated summation up to the truncation error.
func TestGeometricClosedFormMatchesSummation(t *testing.T) {
	n := 100
	for _, pf := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.85} {
		closed, err := GeometricClosedFormC1(n, pf)
		if err != nil {
			t.Fatal(err)
		}
		summed, err := GeometricC1(n, pf, 1, n-1)
		if err != nil {
			t.Fatal(err)
		}
		// Truncation error scale: pf^(N−1) amplified by the log-entropy
		// terms; generous envelope.
		tol := 1e-9 + 1000*math.Pow(pf, float64(n-1))
		if math.Abs(closed-summed) > tol {
			t.Errorf("pf=%v: closed %v, summed %v (tol %v)", pf, closed, summed, tol)
		}
	}
	if _, err := GeometricClosedFormC1(4, 0.5); !errors.Is(err, ErrBadArgs) {
		t.Error("small n accepted")
	}
	if _, err := GeometricClosedFormC1(100, 1); !errors.Is(err, ErrBadArgs) {
		t.Error("pf=1 accepted")
	}
	if _, err := GeometricClosedFormC1(100, math.NaN()); !errors.Is(err, ErrBadArgs) {
		t.Error("NaN pf accepted")
	}
}

// TestGeometricClosedFormMonotoneRegime: for small pf (short expected
// paths), increasing pf lengthens paths and improves anonymity — the
// rising edge of the long-path-effect curve.
func TestGeometricClosedFormMonotoneRegime(t *testing.T) {
	n := 100
	prev := -1.0
	for _, pf := range []float64{0.05, 0.2, 0.4, 0.6, 0.8, 0.9} {
		h, err := GeometricClosedFormC1(n, pf)
		if err != nil {
			t.Fatal(err)
		}
		if h <= prev {
			t.Errorf("pf=%v: H %v not increasing (prev %v)", pf, h, prev)
		}
		prev = h
	}
}

// TestLongPathEffectClosedForm: the Theorem-1 curve is unimodal with an
// interior peak — the paper's headline "long path effect".
func TestLongPathEffectClosedForm(t *testing.T) {
	n := 100
	var peakL int
	var peakH float64
	for l := 1; l <= n-1; l++ {
		h, err := FixedSimpleC1(n, l)
		if err != nil {
			t.Fatal(err)
		}
		if h > peakH {
			peakH, peakL = h, l
		}
	}
	if peakL <= 4 || peakL >= n-2 {
		t.Errorf("peak at l=%d, want interior", peakL)
	}
	hEnd, err := FixedSimpleC1(n, n-1)
	if err != nil {
		t.Fatal(err)
	}
	if !(hEnd < peakH) {
		t.Errorf("no decline after peak: H(%d)=%v, peak %v", n-1, hEnd, peakH)
	}
	t.Logf("N=%d C=1 fixed-length peak at l=%d with H*=%.6f (paper reports l≈31; see DESIGN.md §2)", n, peakL, peakH)
}

// TestOffPathWeightMatchesFallingFactorials pins the identity behind C1's
// off-path event-group weight: the exact rational (n-1-l)/(n-1) used in
// the hot loop equals the falling-factorial ratio P(n-2,l)/P(n-1,l)
// evaluated through the shared log-combinatorics table.
func TestOffPathWeightMatchesFallingFactorials(t *testing.T) {
	for _, n := range []int{5, 20, 100, 333} {
		for l := 0; l <= n-1; l++ {
			exact := float64(n-1-l) / float64(n-1)
			logged := math.Exp(combin.LogFallingFactorial(n-2, l) - combin.LogFallingFactorial(n-1, l))
			if math.Abs(exact-logged) > 1e-12*(1+exact) {
				t.Errorf("n=%d l=%d: rational %v, log falling factorial %v", n, l, exact, logged)
			}
		}
	}
}
