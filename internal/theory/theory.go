// Package theory provides closed-form anonymity degrees for the special
// cases analyzed in §5.3 of Guan et al. (ICDCS 2002): one compromised node
// (C = 1) with fixed-length simple paths (Theorem 1), geometric coin-flip
// lengths (Theorem 2), and uniform lengths (Theorem 3).
//
// The original derivations live in the authors' technical report TR2002-3-1,
// which is not publicly available; the formulas here are our independent
// re-derivations from the §4 threat model (see DESIGN.md §2). They are
// computed by direct event-group summation — a code path deliberately
// disjoint from the class-enumeration engine in internal/events — so the two
// implementations cross-validate each other in tests.
//
// # Event groups for C = 1
//
// Condition on the sender not being the compromised node X (probability
// (N−1)/N; otherwise the sender is self-identified and contributes zero
// entropy). Five mutually exclusive observations exist:
//
//	off    X not on the path: only the receiver's predecessor is seen.
//	t0     X is the last intermediate (successor = receiver).
//	t1     X is second-to-last (its successor equals the receiver's
//	       predecessor).
//	mid    X is at positions 1..l−2: predecessor, successor and the
//	       receiver's predecessor are three distinct witnesses.
//	(s=X)  the compromised node is the sender (handled by the C/N branch).
//
// In each group the sender posterior is a spike α on one candidate (the
// observed predecessor, or the receiver's predecessor for "off" when l = 0
// is possible) plus a uniform slab over the unobserved uncompromised nodes.
package theory

import (
	"errors"
	"fmt"
	"math"

	"anonmix/internal/dist"
	"anonmix/internal/entropy"
)

// ErrBadArgs reports out-of-domain arguments to a closed form.
var ErrBadArgs = errors.New("theory: invalid arguments")

// FixedSimpleC1 returns the anonymity degree of an n-node system with one
// compromised node using fixed-length simple paths of length l — our
// re-derivation of the paper's Theorem 1. It is piecewise:
//
//	l = 0:     0                                (sender exposed to receiver)
//	l = 1, 2:  (N−2)/N · log2(N−2)              (the two lengths coincide)
//	l ≥ 3:     [ (N−l)·log2(N−2) + log2(N−3) + (l−2)·Hmid(l) ] / N
//
// where Hmid(l) is the spike-and-slab entropy with spike 1/(l−2) over N−4
// slab candidates. The l = 1,2 equality and the l = 3 dip reproduce the
// paper's Figure 3(b) observations; the rise-then-fall in l reproduces the
// long-path effect of Figure 3(a).
func FixedSimpleC1(n, l int) (float64, error) {
	if n < 5 {
		return 0, fmt.Errorf("%w: need n ≥ 5, have %d", ErrBadArgs, n)
	}
	if l < 0 || l > n-1 {
		return 0, fmt.Errorf("%w: fixed length %d outside [0,%d]", ErrBadArgs, l, n-1)
	}
	nf := float64(n)
	switch l {
	case 0:
		return 0, nil
	case 1, 2:
		return (nf - 2) / nf * math.Log2(nf-2), nil
	default:
		hMid := entropy.SpikeAndSlab(1/float64(l-2), n-4)
		h := (nf-float64(l))*math.Log2(nf-2) + math.Log2(nf-3) + float64(l-2)*hMid
		return h / nf, nil
	}
}

// C1 returns the anonymity degree of an n-node system with one compromised
// node under an arbitrary path-length distribution, by direct summation
// over the five C = 1 event groups (see the package comment). This is the
// general closed form from which Theorems 1–3 follow by specialization.
func C1(n int, d dist.Length) (float64, error) {
	if n < 5 {
		return 0, fmt.Errorf("%w: need n ≥ 5, have %d", ErrBadArgs, n)
	}
	if err := dist.Validate(d); err != nil {
		return 0, err
	}
	lo, hi := d.Support()
	if hi > n-1 {
		return 0, fmt.Errorf("%w: support max %d exceeds N-1 = %d", ErrBadArgs, hi, n-1)
	}
	nf := float64(n)

	// Accumulate the five event-group weights (each conditioned on the
	// sender being uncompromised) and their Bayes numerators.
	var (
		pOff, pOffSpike float64 // off-path; spike numerator is P(l = 0)
		pT0, pT0Spike   float64 // tail gap 0; spike numerator is P(l = 1)
		pT1, pT1Spike   float64 // tail gap 1; spike numerator is P(l = 2)
		pMid, pMidSpike float64 // middle; spike numerator is P(l ≥ 3)
	)
	for l := lo; l <= hi; l++ {
		p := d.PMF(l)
		if p == 0 {
			continue
		}
		// P(X off path | l) is the falling-factorial ratio
		// P(n−2, l)/P(n−1, l), which telescopes to the exact rational
		// (n−1−l)/(n−1) — evaluated directly so the weight carries no
		// log-space rounding. Tests cross-check the telescoped form against
		// combin.LogFallingFactorial.
		pOff += p * float64(n-1-l) / float64(n-1)
		if l == 0 {
			pOffSpike += p
		}
		if l >= 1 {
			pT0 += p / float64(n-1)
			if l == 1 {
				pT0Spike += p / float64(n-1)
			}
		}
		if l >= 2 {
			pT1 += p / float64(n-1)
			if l == 2 {
				pT1Spike += p / float64(n-1)
			}
		}
		if l >= 3 {
			pMid += p * float64(l-2) / float64(n-1)
			pMidSpike += p / float64(n-1)
		}
	}

	groups := []struct {
		p, spike float64
		rest     int
	}{
		{pOff, pOffSpike, n - 2},
		{pT0, pT0Spike, n - 2},
		{pT1, pT1Spike, n - 3},
		{pMid, pMidSpike, n - 4},
	}
	var h float64
	for _, g := range groups {
		if g.p == 0 {
			continue
		}
		alpha := g.spike / g.p
		if alpha > 1 {
			alpha = 1
		}
		h += g.p * entropy.SpikeAndSlab(alpha, g.rest)
	}
	return (nf - 1) / nf * h, nil
}

// UniformC1 returns the anonymity degree for uniform lengths U(a,b) — the
// paper's Theorem 3 setting. When a ≥ 3 the result depends on the
// distribution only through its mean (paper: "the anonymity degree only
// depends on the expected value of the path length"); MeanOnlyC1 computes
// that reduced form directly.
func UniformC1(n, a, b int) (float64, error) {
	u, err := dist.NewUniform(a, b)
	if err != nil {
		return 0, err
	}
	return C1(n, u)
}

// MeanOnlyC1 returns the anonymity degree for any length distribution with
// lower bound ≥ 3 as a function of the mean alone:
//
//	H* = [ (N−m)·log2(N−2) + log2(N−3) + (m−2)·Hmid ] / N,  Hmid spike 1/(m−2)
//
// with m the expected length (may be fractional). For integer m this equals
// FixedSimpleC1(n, m) — the paper's conclusion 2: fixed-length and uniform
// variable-length strategies coincide when the uniform lower bound is ≥ 3
// and the expectations match.
func MeanOnlyC1(n int, mean float64) (float64, error) {
	if n < 5 {
		return 0, fmt.Errorf("%w: need n ≥ 5, have %d", ErrBadArgs, n)
	}
	if mean < 3 || mean > float64(n-1) {
		return 0, fmt.Errorf("%w: mean %v outside [3, %d]", ErrBadArgs, mean, n-1)
	}
	nf := float64(n)
	hMid := entropy.SpikeAndSlab(1/(mean-2), n-4)
	h := (nf-mean)*math.Log2(nf-2) + math.Log2(nf-3) + (mean-2)*hMid
	return h / nf, nil
}

// GeometricC1 returns the anonymity degree under the coin-flip length
// distribution of the paper's Formula (12) (Crowds / Onion Routing II) with
// forwarding probability pf, truncated at maxLen — our form of Theorem 2.
func GeometricC1(n int, pf float64, minLen, maxLen int) (float64, error) {
	g, err := dist.NewGeometric(pf, minLen, maxLen)
	if err != nil {
		return 0, err
	}
	return C1(n, g)
}

// GeometricClosedFormC1 is the fully closed-form variant of Theorem 2: for
// the untruncated geometric P(l = k) = pf^(k−1)·(1−pf), k ≥ 1, the five
// event-group weights have geometric-series closed forms:
//
//	P(l ≥ 1) = 1     P(l = 1) = 1−pf      E[l]        = 1/(1−pf)
//	P(l ≥ 2) = pf    P(l = 2) = pf(1−pf)  E[(l−2)⁺]   = pf²/(1−pf)
//	P(l ≥ 3) = pf²
//
// No summation loop is involved. Because a simple path cannot exceed
// N−1 intermediates, the formula carries an O(pf^(N−1)·N) truncation error
// relative to the exact engine; callers needing exactness under truncation
// should use GeometricC1.
func GeometricClosedFormC1(n int, pf float64) (float64, error) {
	if n < 5 {
		return 0, fmt.Errorf("%w: need n ≥ 5, have %d", ErrBadArgs, n)
	}
	if pf < 0 || pf >= 1 || math.IsNaN(pf) {
		return 0, fmt.Errorf("%w: pf = %v", ErrBadArgs, pf)
	}
	nf := float64(n)
	nm1 := nf - 1
	meanL := 1 / (1 - pf)
	groups := []struct {
		p, spike float64
		rest     int
	}{
		// Off-path: Σ p(l)(N−1−l)/(N−1); no l = 0 atom, so no spike.
		{(nm1 - meanL) / nm1, 0, n - 2},
		// Tail gap 0: weight P(l≥1)/(N−1), spike P(l=1)/(N−1).
		{1 / nm1, (1 - pf) / nm1, n - 2},
		// Tail gap 1: weight P(l≥2)/(N−1), spike P(l=2)/(N−1).
		{pf / nm1, pf * (1 - pf) / nm1, n - 3},
		// Middle: weight E[(l−2)⁺]/(N−1), spike P(l≥3)/(N−1).
		{pf * pf / (1 - pf) / nm1, pf * pf / nm1, n - 4},
	}
	var h float64
	for _, g := range groups {
		if g.p <= 0 {
			continue
		}
		alpha := g.spike / g.p
		if alpha > 1 {
			alpha = 1
		}
		h += g.p * entropy.SpikeAndSlab(alpha, g.rest)
	}
	return (nf - 1) / nf * h, nil
}
