package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExitCodeOnFindings builds a throwaway module with a seedpurity
// violation and checks the command contract: exit status 1, positional
// go-vet-style diagnostics on stdout, and a finding count on stderr.
func TestExitCodeOnFindings(t *testing.T) {
	tmp := t.TempDir()
	files := map[string]string{
		"go.mod": "module anonlintcorpus\n\ngo 1.24\n",
		"bad.go": `package bad

import "math/rand"

func Ambient() *rand.Rand {
	return rand.New(rand.NewSource(42))
}
`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(tmp, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cmd := exec.Command("go", "run", "anonmix/cmd/anonlint", "-dir", tmp, "./...")
	cmd.Dir = "../.." // module root, so go run resolves the command
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()

	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("expected exit error, got %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "bad.go:6:") {
		t.Errorf("stdout lacks positional diagnostic for bad.go line 6:\n%s", out)
	}
	if !strings.Contains(out, "seedpurity") || !strings.Contains(out, "the constant 42") {
		t.Errorf("stdout lacks the seedpurity finding:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr lacks the finding count:\n%s", stderr.String())
	}
}
