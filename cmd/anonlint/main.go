// Command anonlint runs the repository's static-analysis suite (see
// internal/analysis) over the named packages and prints positional
// diagnostics, go vet style. `make lint` and the CI lint step run
// `anonlint ./...`; the suite self-check test runs the same suite
// in-process, so a CI failure always reproduces locally.
//
// Usage:
//
//	anonlint [-dir moduleRoot] [packages...]
//
// Exit status: 0 when the tree is clean, 1 when any diagnostic was
// reported, 2 on a load or internal error.
//
// Suppressions use the form //anonlint:allow <analyzer>(<reason>) with a
// mandatory reason; malformed anonlint comments are themselves reported.
package main

import (
	"flag"
	"fmt"
	"os"

	"anonmix/internal/analysis/anonlint"
	"anonmix/internal/analysis/suite"
)

func main() {
	fs := flag.NewFlagSet("anonlint", flag.ExitOnError)
	dir := fs.String("dir", ".", "module directory to resolve package patterns in")
	list := fs.Bool("analyzers", false, "print the suite's analyzers and exit")
	fs.Parse(os.Args[1:])

	if *list {
		for _, c := range suite.Analyzers() {
			fmt.Printf("%-12s %s\n", c.Analyzer.Name, c.Analyzer.Doc)
		}
		return
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := anonlint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := prog.Run(suite.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "anonlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "anonlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
