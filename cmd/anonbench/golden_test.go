package main

// Golden-file tests: small-N reference outputs for the parameterized
// figures are committed under testdata/ and compared bit-exactly. Every
// covered figure is a pure function of its parameters — exact sweeps are
// closed-form, sampled sweeps pin (seed, trials, workers) — so the TSVs
// reproduce on any machine and any shard count; a diff here means the
// numbers changed, not the weather. Regenerate intentionally with
//
//	go test ./cmd/anonbench -run TestGoldenFigures -update
//
// and review the diff like any other behavior change.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden figure TSVs")

func TestGoldenFigures(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		// The paper configuration, fully closed-form.
		{"fig3b", []string{"-figure", "3b"}},
		// Every backend on one small scenario set (MC workers pinned
		// inside the generator).
		{"ablation-backends", []string{
			"-figure", "ablation-backends", "-backends-n", "16", "-backends-c", "2",
			"-backends-messages", "1500", "-backends-seed", "3",
			"-backends-strategies", "freedom;uniform:1,7",
		}},
		// Repeated communication (workers pinned inside the generator).
		{"degradation-rounds", []string{
			"-figure", "degradation-rounds", "-degrade-n", "14", "-degrade-c", "3",
			"-degrade-sessions", "300", "-degrade-rounds", "6", "-degrade-seed", "2",
			"-degrade-strategies", "fixed:3;uniform:1,5",
		}},
		// Dynamic populations (workers pinned via the flag).
		{"churn-sweep", []string{
			"-figure", "churn-sweep", "-churn-n", "15", "-churn-c", "2",
			"-churn-sessions", "300", "-churn-seed", "4", "-churn-workers", "2",
			"-churn-strategies", "fixed:3",
		}},
		// Epoch-aware optimization (exact engines + deterministic solver,
		// no sampling — pure function of the parameters).
		{"epoch-optimizer", []string{
			"-figure", "epoch-optimizer", "-epochopt-n", "24", "-epochopt-c", "2",
			"-epochopt-max", "8",
		}},
		// Fault injection on the testbed kernel (hash-derived loss draws,
		// sorted retry folds — bit-stable across shard interleavings).
		{"reliability-sweep", []string{
			"-figure", "reliability-sweep", "-rel-n", "14", "-rel-c", "3",
			"-rel-messages", "800", "-rel-seed", "5",
			"-rel-losses", "0,0.05,0.2", "-rel-strategies", "uniform:1,4",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tc.args, &buf); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", tc.name+".golden.tsv")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", golden, buf.Len())
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output differs from %s (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s",
					golden, buf.Bytes(), want)
			}
		})
	}
}

// TestGoldenRepeatable: the golden figures are bit-stable within a process
// too — two generations from warm caches match exactly.
func TestGoldenRepeatable(t *testing.T) {
	args := []string{
		"-figure", "churn-sweep", "-churn-n", "15", "-churn-c", "2",
		"-churn-sessions", "100", "-churn-seed", "4", "-churn-workers", "2",
		"-churn-strategies", "fixed:3",
	}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("repeated generation differs:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}
