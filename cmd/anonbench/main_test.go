package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"3a", "3b", "4a", "5d", "6"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing %q in list output", name)
		}
	}
}

func TestRunSingleFigureToStdout(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-figure", "3b"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# Figure 3b") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "path length l\tF(l)") {
		t.Errorf("missing TSV header:\n%s", out)
	}
	if !strings.Contains(out, "6.482416") {
		t.Errorf("missing known value:\n%s", out)
	}
}

func TestRunFigureToDirectory(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-figure", "3b", "-out", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3b.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "6.482416") {
		t.Errorf("file content:\n%s", data)
	}
}

func TestRunLargeCSweep(t *testing.T) {
	var sb strings.Builder
	args := []string{"-figure", "ablation-largec", "-largec-n", "50", "-largec-frac", "0.4", "-largec-points", "4"}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# Figure ablation-largec") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "N=50 (H*/log2 N)") {
		t.Errorf("missing series label:\n%s", out)
	}
	// 5 fraction rows (0 .. 0.4 step 0.1) below the TSV header.
	if got := strings.Count(out, "\n"); got < 6 {
		t.Errorf("want ≥ 6 lines, got %d:\n%s", got, out)
	}
}

func TestRunLargeCBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-figure", "ablation-largec", "-largec-n", "x"}, &sb); err == nil {
		t.Error("bad size list accepted")
	}
	if err := run([]string{"-figure", "ablation-largec", "-largec-frac", "2"}, &sb); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-figure", "nope"}, &sb); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run(nil, &sb); err == nil {
		t.Error("no action accepted")
	}
	if err := run([]string{"-bogusflag"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunBackendsSweep(t *testing.T) {
	var sb strings.Builder
	args := []string{
		"-figure", "ablation-backends", "-backends-n", "20", "-backends-c", "2",
		"-backends-messages", "800", "-backends-strategies", "freedom;uniform:2,6",
	}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# Figure ablation-backends") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "exact\tmc(800)\ttestbed(800)") {
		t.Errorf("missing series labels:\n%s", out)
	}
}

func TestRunDegradationSweep(t *testing.T) {
	var sb strings.Builder
	args := []string{
		"-figure", "degradation-rounds", "-degrade-n", "20", "-degrade-c", "2",
		"-degrade-sessions", "300", "-degrade-rounds", "4",
		"-degrade-strategies", "freedom;uniform:1,5",
	}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# Figure degradation-rounds") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "freedom\tuniform:1,5\tfreedom (recv honest)\tuniform:1,5 (recv honest)") {
		t.Errorf("missing series labels:\n%s", out)
	}
	// Header plus one row per round.
	if got := strings.Count(out, "\n"); got < 6 {
		t.Errorf("want ≥ 6 lines, got %d:\n%s", got, out)
	}
}

func TestRunDegradationSweepBadSpec(t *testing.T) {
	var sb strings.Builder
	args := []string{"-figure", "degradation-rounds", "-degrade-strategies", "warp:9"}
	if err := run(args, &sb); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestRunBackendsSweepBadSpec(t *testing.T) {
	var sb strings.Builder
	args := []string{"-figure", "ablation-backends", "-backends-strategies", "warp:9"}
	if err := run(args, &sb); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestRunBackendsSweepDuplicateMean(t *testing.T) {
	var sb strings.Builder
	args := []string{
		"-figure", "ablation-backends", "-backends-n", "20", "-backends-c", "1",
		"-backends-messages", "200", "-backends-strategies", "freedom;uniform:1,5",
	}
	err := run(args, &sb)
	if err == nil || !strings.Contains(err.Error(), "share mean path length") {
		t.Errorf("duplicate-mean specs: err = %v", err)
	}
}
