// Command anonbench regenerates the figures of Guan et al. (ICDCS 2002)
// §6 as TSV tables on stdout or into a directory.
//
// Usage:
//
//	anonbench -figure 3a            # one figure to stdout
//	anonbench -all -out results/    # every figure into results/<name>.tsv
//	anonbench -list                 # available figure names
//	anonbench -figure ablation-largec -largec-n 100,1000 -largec-frac 0.5
//	anonbench -figure churn-sweep -churn-n 30 -churn-c 3    # dynamic populations
//	anonbench -figure epoch-optimizer -epochopt-n 40        # epoch-aware optimization
//
// The paper figures use its configuration (N = 100 nodes, C = 1
// compromised node, receiver compromised). The large-C ablation drives
// the counted-bucket engine across compromised fractions; its system
// sizes, maximum fraction, and point count are set by the -largec-*
// flags.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"anonmix/internal/cliutil"
	"anonmix/internal/figures"
	"anonmix/internal/pathsel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !cliutil.Silent(err) {
			// %v prints the full wrapped sentinel chain.
			fmt.Fprintln(os.Stderr, "anonbench:", err)
		}
		// Exit 2 for configuration/usage errors (unknown figures are
		// usage: the figure name came off the command line), 1 for
		// runtime failures.
		os.Exit(exitCode(err))
	}
}

// exitCode extends the shared contract with the figure registry's
// sentinel: asking for a figure that does not exist is a usage error.
func exitCode(err error) int {
	if errors.Is(err, figures.ErrUnknownFigure) {
		return 2
	}
	return cliutil.Code(err)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("anonbench", flag.ContinueOnError)
	var (
		figure       = fs.String("figure", "", "figure to regenerate (see -list)")
		all          = fs.Bool("all", false, "regenerate every figure")
		out          = fs.String("out", "", "directory for TSV files (stdout if empty)")
		list         = fs.Bool("list", false, "list available figures")
		largeCNs     = fs.String("largec-n", "100,1000", "comma-separated system sizes for ablation-largec")
		largeCFrac   = fs.Float64("largec-frac", 0.5, "maximum compromised fraction c/N for ablation-largec")
		largeCPoints = fs.Int("largec-points", 10, "points per curve for ablation-largec")
		backendsN    = fs.Int("backends-n", figures.PaperN, "system size for ablation-backends")
		backendsC    = fs.Int("backends-c", figures.PaperC, "compromised count for ablation-backends")
		backendsMsgs = fs.Int("backends-messages", 4000, "messages/trials per sampled point for ablation-backends")
		backendsStr  = fs.String("backends-strategies", "", "semicolon-separated pathsel specs for ablation-backends, e.g. 'freedom;uniform:1,5' (default set if empty)")
		backendsSeed = fs.Int64("backends-seed", 1, "seed for ablation-backends sampling")
		degradeN     = fs.Int("degrade-n", figures.PaperN, "system size for degradation-rounds")
		degradeC     = fs.Int("degrade-c", 3, "compromised count for degradation-rounds")
		degradeSess  = fs.Int("degrade-sessions", 2000, "sampled sessions per curve for degradation-rounds")
		degradeK     = fs.Int("degrade-rounds", 16, "rounds per session for degradation-rounds")
		degradeStr   = fs.String("degrade-strategies", "", "semicolon-separated pathsel specs for degradation-rounds (default set if empty)")
		degradeSeed  = fs.Int64("degrade-seed", 1, "seed for degradation-rounds sampling")
		churnN       = fs.Int("churn-n", 30, "base system size for churn-sweep")
		churnC       = fs.Int("churn-c", 3, "base compromised count for churn-sweep")
		churnSess    = fs.Int("churn-sessions", 2000, "sampled sessions per curve for churn-sweep")
		churnWorkers = fs.Int("churn-workers", 4, "sampling workers for churn-sweep (0 = machine width; pin for reproducible output)")
		churnStr     = fs.String("churn-strategies", "", "semicolon-separated pathsel specs for churn-sweep (default set if empty)")
		churnSeed    = fs.Int64("churn-seed", 1, "seed for churn-sweep sampling")
		epochOptN    = fs.Int("epochopt-n", 40, "base system size for epoch-optimizer")
		epochOptC    = fs.Int("epochopt-c", 4, "base compromised count for epoch-optimizer")
		epochOptMax  = fs.Int("epochopt-max", 12, "path-length support maximum for epoch-optimizer")
		relN         = fs.Int("rel-n", 30, "system size for reliability-sweep")
		relC         = fs.Int("rel-c", 3, "compromised count for reliability-sweep")
		relMsgs      = fs.Int("rel-messages", 4000, "messages per point for reliability-sweep")
		relLosses    = fs.String("rel-losses", "", "comma-separated link-loss rates for reliability-sweep (default 0,0.01,0.05,0.20)")
		relStr       = fs.String("rel-strategies", "", "semicolon-separated pathsel specs for reliability-sweep (default set if empty)")
		relSeed      = fs.Int64("rel-seed", 1, "seed for reliability-sweep")
	)
	if err := fs.Parse(args); err != nil {
		return cliutil.Usage(err)
	}

	if *list {
		for _, name := range figures.Names() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}

	var figs []figures.Figure
	switch {
	case *all:
		fmt.Fprintln(os.Stderr, "anonbench: regenerating all figures (N=100, C=1)...")
		fs, err := figures.All()
		if err != nil {
			return err
		}
		figs = fs
	case *figure == "ablation-backends":
		// Always the parameterized sweep: the -backends-* flag defaults
		// match the named figure, so explicit and default values behave
		// identically (no stale-literal guard to drift).
		f, err := figures.AblationBackendsSweep(*backendsN, *backendsC, *backendsMsgs, *backendsSeed,
			pathsel.SplitSpecs(*backendsStr))
		if err != nil {
			return err
		}
		figs = []figures.Figure{f}
	case *figure == "degradation-rounds":
		// Like ablation-backends, always the parameterized sweep: the
		// -degrade-* defaults match the named figure.
		f, err := figures.DegradationRoundsSweep(*degradeN, *degradeC, *degradeSess, *degradeK,
			*degradeSeed, pathsel.SplitSpecs(*degradeStr))
		if err != nil {
			return err
		}
		figs = []figures.Figure{f}
	case *figure == "churn-sweep":
		// Like the other parameterized sweeps: the -churn-* defaults match
		// the named figure.
		f, err := figures.ChurnSweep(*churnN, *churnC, *churnSess, *churnSeed, *churnWorkers,
			pathsel.SplitSpecs(*churnStr))
		if err != nil {
			return err
		}
		figs = []figures.Figure{f}
	case *figure == "epoch-optimizer":
		// Like the other parameterized sweeps: the -epochopt-* defaults
		// match the named figure. Fully closed-form (exact engines plus a
		// deterministic solver), so the output is bit-reproducible.
		f, err := figures.EpochOptimizerSweep(*epochOptN, *epochOptC, *epochOptMax)
		if err != nil {
			return err
		}
		figs = []figures.Figure{f}
	case *figure == "reliability-sweep":
		// Like the other parameterized sweeps: the -rel-* defaults match
		// the named figure. Runs the testbed kernel, so every point is a
		// fault-injected execution, not a closed form.
		losses, err := parseFloats(*relLosses)
		if err != nil {
			return fmt.Errorf("-rel-losses: %w", err)
		}
		f, err := figures.ReliabilitySweep(*relN, *relC, *relMsgs, *relSeed, losses,
			pathsel.SplitSpecs(*relStr))
		if err != nil {
			return err
		}
		figs = []figures.Figure{f}
	case *figure == "ablation-largec":
		ns, err := parseInts(*largeCNs)
		if err != nil {
			return fmt.Errorf("-largec-n: %w", err)
		}
		f, err := figures.AblationLargeCSweep(ns, *largeCFrac, *largeCPoints)
		if err != nil {
			return err
		}
		figs = []figures.Figure{f}
	case *figure != "":
		f, err := figures.ByName(*figure)
		if err != nil {
			return err
		}
		figs = []figures.Figure{f}
	default:
		return fmt.Errorf("pass -figure <name>, -all, or -list")
	}

	for _, f := range figs {
		if *out == "" {
			fmt.Fprintf(stdout, "# Figure %s — %s\n", f.Name, f.Title)
			if err := f.WriteTSV(stdout); err != nil {
				return err
			}
			fmt.Fprintln(stdout)
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*out, "fig"+f.Name+".tsv")
		file, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := f.WriteTSV(file); err != nil {
			file.Close()
			return err
		}
		if err := file.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "anonbench: wrote %s\n", path)
	}
	return nil
}

// parseFloats parses a comma-separated list of floats in [0, 1]; an empty
// string means "use the figure's default sweep".
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("loss rate %v outside [0, 1]", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("size %d must be positive", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty size list %q", s)
	}
	return out, nil
}
