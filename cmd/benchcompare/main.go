// Command benchcompare diffs the two newest BENCH_<date>_<sha>.json
// snapshots (as written by `make bench`, i.e. `go test -json -bench
// -benchmem`) and fails when any benchmark of the smoke set regressed by
// more than the threshold — in wall clock (ns/op) or in memory (B/op,
// allocs/op). `make bench-compare` and the non-blocking CI step run
// exactly this command, so the local gate and the CI gate cannot diverge.
//
// Usage:
//
//	benchcompare                      # newest two BENCH_*.json in .
//	benchcompare old.json new.json    # explicit baseline and candidate
//	benchcompare -threshold 1.5       # tolerate up to +50% ns/op
//	benchcompare -memthreshold 2      # tolerate up to 2x B/op, allocs/op
//
// Memory gating only applies where both snapshots carry -benchmem columns,
// and small absolute movements (≤64 B/op, ≤16 allocs/op) never fail the
// gate: near-zero footprints — the point of the arena fast path — would
// otherwise turn one stray allocation into a 2x "regression".
//
// With fewer than two snapshots available the command reports that there
// is nothing to compare and exits 0 — the first snapshot of a trajectory
// is never a failure. The opposite degradation is loud: when an explicit
// -smoke pattern is given, a gated benchmark that is absent from either
// snapshot, carries NaN metrics, or matches nothing at all fails the
// comparison instead of silently dropping out of the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchcompare", flag.ContinueOnError)
	var (
		threshold    = fs.Float64("threshold", 1.2, "maximum allowed new/old ns-per-op ratio")
		memThreshold = fs.Float64("memthreshold", 1.3, "maximum allowed new/old B-per-op and allocs-per-op ratio")
		// The Makefile's SMOKE variable is the single definition of the
		// gated set and is passed in by `make bench-compare`; the empty
		// default gates every benchmark the snapshots share, so a bare
		// invocation is strictly stricter, never stale.
		smoke = fs.String("smoke", "", "regexp selecting the gated benchmarks (matched after stripping Benchmark and -procs; empty gates all)")
		dir   = fs.String("dir", ".", "directory to glob BENCH_*.json from")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	re, err := regexp.Compile(*smoke)
	if err != nil {
		return fmt.Errorf("-smoke: %w", err)
	}

	files := fs.Args()
	if len(files) != 0 {
		// Explicit arguments must name exactly a baseline and a candidate;
		// a lone file is a usage error (typo, unexpanded glob), not the
		// empty-trajectory case.
		if len(files) != 2 {
			return fmt.Errorf("pass exactly two files (baseline, candidate), have %d", len(files))
		}
	} else {
		files, err = newestSnapshots(*dir)
		if err != nil {
			return err
		}
		if len(files) < 2 {
			// The first snapshot of a trajectory is never a failure.
			fmt.Fprintf(w, "benchcompare: %d snapshot(s) found — nothing to compare\n", len(files))
			return nil
		}
	}
	oldFile, newFile := files[0], files[1]
	oldRes, err := parseBench(oldFile)
	if err != nil {
		return err
	}
	newRes, err := parseBench(newFile)
	if err != nil {
		return err
	}

	if err := checkGated(re, *smoke, oldRes, newRes, oldFile, newFile); err != nil {
		return err
	}

	names := make([]string, 0, len(newRes))
	for name := range newRes {
		if _, ok := oldRes[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", oldFile, newFile)
	}

	fmt.Fprintf(w, "baseline  %s\ncandidate %s\n\n", oldFile, newFile)
	fmt.Fprintf(w, "%-28s %14s %14s %8s %11s %11s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "ratio", "old allocs", "new allocs", "ratio")
	var failed []string
	for _, name := range names {
		o, n := oldRes[name], newRes[name]
		ratio := n.ns / o.ns
		gated := re.MatchString(name)
		var marks []string
		if gated && ratio > *threshold {
			marks = append(marks, "ns/op")
		}
		allocCols := fmt.Sprintf("%11s %11s %8s", "-", "-", "-")
		if o.hasMem && n.hasMem {
			allocCols = fmt.Sprintf("%11.0f %11.0f %7.2fx", o.allocs, n.allocs, memRatio(o.allocs, n.allocs))
			if gated {
				// Floors keep near-zero footprints from flagging noise: a
				// benchmark at 5 allocs/op may jitter to 8 without meaning
				// anything, while 500 → 700 is a real leak.
				if n.bytes > o.bytes**memThreshold && n.bytes-o.bytes > 64 {
					marks = append(marks, "B/op")
				}
				if n.allocs > o.allocs**memThreshold && n.allocs-o.allocs > 16 {
					marks = append(marks, "allocs/op")
				}
			}
		}
		mark := ""
		switch {
		case len(marks) > 0:
			mark = "  REGRESSION(" + strings.Join(marks, ",") + ")"
			failed = append(failed, name+" ("+strings.Join(marks, ",")+")")
		case gated:
			mark = "  (gated)"
		}
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %7.2fx %s%s\n", name, o.ns, n.ns, ratio, allocCols, mark)
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d smoke benchmark(s) regressed beyond ns +%.0f%% / mem +%.0f%%: %s",
			len(failed), (*threshold-1)*100, (*memThreshold-1)*100, strings.Join(failed, ", "))
	}
	fmt.Fprintf(w, "\nOK: no gated benchmark regressed beyond ns +%.0f%% / mem +%.0f%%\n",
		(*threshold-1)*100, (*memThreshold-1)*100)
	return nil
}

// checkGated validates the smoke set before any ratios are computed. A
// gated benchmark that is absent from one snapshot, or whose metrics
// parsed as NaN or non-positive, must fail loudly: falling through to
// the common-name comparison would silently drop it from the gate, so a
// benchmark that vanished (renamed, build-tagged away, crashed mid-run)
// or recorded garbage would read as "no regression". Absence is only
// enforced when an explicit -smoke pattern names the gated set; with the
// gate-everything default, snapshots from different commits legitimately
// disagree about which benchmarks exist.
func checkGated(re *regexp.Regexp, pattern string, oldRes, newRes map[string]result, oldFile, newFile string) error {
	union := make(map[string]bool, len(oldRes)+len(newRes))
	for name := range oldRes {
		union[name] = true
	}
	for name := range newRes {
		union[name] = true
	}
	var problems []string
	gated := 0
	for name := range union {
		if !re.MatchString(name) {
			continue
		}
		gated++
		for _, side := range []struct {
			res  map[string]result
			file string
		}{{oldRes, oldFile}, {newRes, newFile}} {
			r, ok := side.res[name]
			if !ok {
				if pattern != "" {
					problems = append(problems, fmt.Sprintf("%s absent from %s", name, side.file))
				}
				continue
			}
			if math.IsNaN(r.ns) || r.ns <= 0 {
				problems = append(problems, fmt.Sprintf("%s has unusable ns/op %v in %s", name, r.ns, side.file))
			}
			if r.hasMem && (math.IsNaN(r.bytes) || math.IsNaN(r.allocs)) {
				problems = append(problems, fmt.Sprintf("%s has NaN memory columns in %s", name, side.file))
			}
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		return fmt.Errorf("smoke set is not comparable: %s", strings.Join(problems, "; "))
	}
	if pattern != "" && gated == 0 {
		return fmt.Errorf("smoke pattern %q matched no benchmark in either snapshot: the gate would check nothing", pattern)
	}
	return nil
}

// minResult folds two samples of the same benchmark into their per-metric
// minimum; a sample without -benchmem columns contributes only ns/op.
func minResult(a, b result) result {
	out := result{ns: math.Min(a.ns, b.ns)}
	switch {
	case a.hasMem && b.hasMem:
		out.bytes, out.allocs, out.hasMem = math.Min(a.bytes, b.bytes), math.Min(a.allocs, b.allocs), true
	case a.hasMem:
		out.bytes, out.allocs, out.hasMem = a.bytes, a.allocs, true
	case b.hasMem:
		out.bytes, out.allocs, out.hasMem = b.bytes, b.allocs, true
	}
	return out
}

// memRatio guards the display ratio against a zero baseline.
func memRatio(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return new / old
}

// newestSnapshots returns the two most recent BENCH_*.json files (by
// modification time, then name), oldest first; fewer if not available.
func newestSnapshots(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	type f struct {
		path string
		mod  int64
	}
	infos := make([]f, 0, len(matches))
	for _, m := range matches {
		st, err := os.Stat(m)
		if err != nil {
			return nil, err
		}
		infos = append(infos, f{m, st.ModTime().UnixNano()})
	}
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].mod != infos[j].mod {
			return infos[i].mod < infos[j].mod
		}
		return infos[i].path < infos[j].path
	})
	if len(infos) > 2 {
		infos = infos[len(infos)-2:]
	}
	out := make([]string, len(infos))
	for i, inf := range infos {
		out[i] = inf.path
	}
	return out, nil
}

// result carries one benchmark's parsed metrics. hasMem marks lines that
// ran under -benchmem; custom b.ReportMetric columns are ignored.
type result struct {
	ns     float64
	bytes  float64
	allocs float64
	hasMem bool
}

// benchLine matches a benchmark result line inside a test2json Output
// field, e.g. "BenchmarkFig3a-4   1   123456789 ns/op". Custom metrics may
// follow ns/op before the -benchmem columns, so those are matched
// separately by memCols.
// NaN is matched so a corrupt sample surfaces in checkGated instead of
// silently failing the line match and vanishing from the gate.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+|NaN) ns/op`)

// memCols matches the -benchmem suffix anywhere after ns/op, tolerating
// the ReportMetric columns benchmarks insert in between.
var memCols = regexp.MustCompile(`([0-9.]+(?:e[+-]?[0-9]+)?|NaN) B/op\s+([0-9.]+(?:e[+-]?[0-9]+)?|NaN) allocs/op`)

// parseBench extracts name → metrics from a `go test -json -bench` stream.
// The testing package prints a benchmark's name before running it and its
// numbers after, so test2json usually splits one result line across
// several output events; the events are therefore reassembled into a flat
// text stream before line-wise matching. A benchmark appearing multiple
// times (`-count=N`) keeps its per-metric minimum: contention on a shared
// runner only ever slows a sample down, so min-of-N is the robust
// estimator of the code's actual cost and is what the snapshot targets
// record (`make bench-smoke-snapshot` runs -count=3).
func parseBench(path string) (map[string]result, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	var text strings.Builder
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action string `json:"Action"`
			Output string `json:"Output"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise in the stream
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]result)
	for _, line := range strings.Split(text.String(), "\n") {
		line = strings.TrimSpace(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := result{ns: ns}
		if mm := memCols.FindStringSubmatch(line); mm != nil {
			b, errB := strconv.ParseFloat(mm[1], 64)
			a, errA := strconv.ParseFloat(mm[2], 64)
			if errB == nil && errA == nil {
				r.bytes, r.allocs, r.hasMem = b, a, true
			}
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		if prev, ok := out[name]; ok {
			r = minResult(prev, r)
		}
		out[name] = r
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}
