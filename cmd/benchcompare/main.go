// Command benchcompare diffs the two newest BENCH_<date>_<sha>.json
// snapshots (as written by `make bench`, i.e. `go test -json -bench`) and
// fails when any benchmark of the smoke set regressed by more than the
// threshold. `make bench-compare` and the non-blocking CI step run exactly
// this command, so the local gate and the CI gate cannot diverge.
//
// Usage:
//
//	benchcompare                      # newest two BENCH_*.json in .
//	benchcompare old.json new.json    # explicit baseline and candidate
//	benchcompare -threshold 1.5       # tolerate up to +50% ns/op
//
// With fewer than two snapshots available the command reports that there
// is nothing to compare and exits 0 — the first snapshot of a trajectory
// is never a failure.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchcompare", flag.ContinueOnError)
	var (
		threshold = fs.Float64("threshold", 1.2, "maximum allowed new/old ns-per-op ratio")
		// The Makefile's SMOKE variable is the single definition of the
		// gated set and is passed in by `make bench-compare`; the empty
		// default gates every benchmark the snapshots share, so a bare
		// invocation is strictly stricter, never stale.
		smoke = fs.String("smoke", "", "regexp selecting the gated benchmarks (matched after stripping Benchmark and -procs; empty gates all)")
		dir   = fs.String("dir", ".", "directory to glob BENCH_*.json from")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	re, err := regexp.Compile(*smoke)
	if err != nil {
		return fmt.Errorf("-smoke: %w", err)
	}

	files := fs.Args()
	if len(files) != 0 {
		// Explicit arguments must name exactly a baseline and a candidate;
		// a lone file is a usage error (typo, unexpanded glob), not the
		// empty-trajectory case.
		if len(files) != 2 {
			return fmt.Errorf("pass exactly two files (baseline, candidate), have %d", len(files))
		}
	} else {
		files, err = newestSnapshots(*dir)
		if err != nil {
			return err
		}
		if len(files) < 2 {
			// The first snapshot of a trajectory is never a failure.
			fmt.Fprintf(w, "benchcompare: %d snapshot(s) found — nothing to compare\n", len(files))
			return nil
		}
	}
	oldFile, newFile := files[0], files[1]
	oldNs, err := parseBench(oldFile)
	if err != nil {
		return err
	}
	newNs, err := parseBench(newFile)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(newNs))
	for name := range newNs {
		if _, ok := oldNs[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", oldFile, newFile)
	}

	fmt.Fprintf(w, "baseline  %s\ncandidate %s\n\n", oldFile, newFile)
	fmt.Fprintf(w, "%-28s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	var failed []string
	for _, name := range names {
		o, n := oldNs[name], newNs[name]
		ratio := n / o
		gated := re.MatchString(name)
		mark := ""
		if gated && ratio > *threshold {
			mark = "  REGRESSION"
			failed = append(failed, name)
		} else if gated {
			mark = "  (gated)"
		}
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %7.2fx%s\n", name, o, n, ratio, mark)
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d smoke benchmark(s) regressed beyond %.0f%%: %s",
			len(failed), (*threshold-1)*100, strings.Join(failed, ", "))
	}
	fmt.Fprintf(w, "\nOK: no gated benchmark regressed beyond %.0f%%\n", (*threshold-1)*100)
	return nil
}

// newestSnapshots returns the two most recent BENCH_*.json files (by
// modification time, then name), oldest first; fewer if not available.
func newestSnapshots(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	type f struct {
		path string
		mod  int64
	}
	infos := make([]f, 0, len(matches))
	for _, m := range matches {
		st, err := os.Stat(m)
		if err != nil {
			return nil, err
		}
		infos = append(infos, f{m, st.ModTime().UnixNano()})
	}
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].mod != infos[j].mod {
			return infos[i].mod < infos[j].mod
		}
		return infos[i].path < infos[j].path
	})
	if len(infos) > 2 {
		infos = infos[len(infos)-2:]
	}
	out := make([]string, len(infos))
	for i, inf := range infos {
		out[i] = inf.path
	}
	return out, nil
}

// benchLine matches a benchmark result line inside a test2json Output
// field, e.g. "BenchmarkFig3a-4   1   123456789 ns/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts name → ns/op from a `go test -json -bench` stream.
// The testing package prints a benchmark's name before running it and its
// numbers after, so test2json usually splits one result line across
// several output events; the events are therefore reassembled into a flat
// text stream before line-wise matching. Benchmarks appearing multiple
// times keep their last value.
func parseBench(path string) (map[string]float64, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	var text strings.Builder
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action string `json:"Action"`
			Output string `json:"Output"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise in the stream
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(text.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[strings.TrimPrefix(m[1], "Benchmark")] = ns
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}
