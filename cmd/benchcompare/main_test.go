package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// snapshot writes a minimal go-test-json bench stream.
func snapshot(t *testing.T, dir, name string, ns map[string]float64) string {
	t.Helper()
	var sb strings.Builder
	for bench, v := range ns {
		line := fmt.Sprintf("Benchmark%s-4 \t       1\t%10.0f ns/op\n", bench, v)
		b, err := json.Marshal(map[string]string{"Action": "output", "Output": line})
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// memSnapshot writes a bench stream with -benchmem columns and a custom
// ReportMetric column between ns/op and B/op, mirroring real output.
func memSnapshot(t *testing.T, dir, name string, res map[string][3]float64) string {
	t.Helper()
	var sb strings.Builder
	for bench, v := range res {
		line := fmt.Sprintf("Benchmark%s-4 \t       1\t%10.0f ns/op\t         2.908 H16_bits\t%8.0f B/op\t%8.0f allocs/op\n",
			bench, v[0], v[1], v[2])
		b, err := json.Marshal(map[string]string{"Action": "output", "Output": line})
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// smokeSet mirrors the Makefile's SMOKE variable for tests that exercise
// the narrowed gate.
const smokeSet = `^(Fig3a|Fig4[abcd]|Weights|DegreeLargeC|WeightsLargeC)$`

func TestComparePasses(t *testing.T) {
	dir := t.TempDir()
	old := snapshot(t, dir, "BENCH_20260101_aaaa.json", map[string]float64{
		"Fig3a": 1000, "Weights": 500, "Other": 100,
	})
	new := snapshot(t, dir, "BENCH_20260102_bbbb.json", map[string]float64{
		"Fig3a": 1100, "Weights": 450, "Other": 1000, // Other is outside the smoke set
	})
	var sb strings.Builder
	if err := run([]string{"-smoke", smokeSet, old, new}, &sb); err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "OK: no gated benchmark regressed") {
		t.Errorf("output:\n%s", sb.String())
	}
	// Without -smoke every common benchmark is gated, so the Other
	// regression now fails the comparison.
	sb.Reset()
	if err := run([]string{old, new}, &sb); err == nil || !strings.Contains(err.Error(), "Other") {
		t.Errorf("default gate-all: err = %v", err)
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	old := snapshot(t, dir, "BENCH_20260101_aaaa.json", map[string]float64{"Fig3a": 1000})
	new := snapshot(t, dir, "BENCH_20260102_bbbb.json", map[string]float64{"Fig3a": 1500})
	var sb strings.Builder
	err := run([]string{old, new}, &sb)
	if err == nil || !strings.Contains(err.Error(), "Fig3a") {
		t.Fatalf("err = %v\n%s", err, sb.String())
	}
	// A looser threshold tolerates the same delta.
	sb.Reset()
	if err := run([]string{"-threshold", "1.6", old, new}, &sb); err != nil {
		t.Fatalf("threshold 1.6: %v", err)
	}
}

func TestCompareGatesAllocRegression(t *testing.T) {
	dir := t.TempDir()
	// ns/op is flat; allocs/op grows 100 → 1000, B/op 1kB → 100kB.
	old := memSnapshot(t, dir, "BENCH_20260101_aaaa.json", map[string][3]float64{
		"Fig3a": {1000, 1024, 100},
	})
	new := memSnapshot(t, dir, "BENCH_20260102_bbbb.json", map[string][3]float64{
		"Fig3a": {1000, 102400, 1000},
	})
	var sb strings.Builder
	err := run([]string{old, new}, &sb)
	if err == nil || !strings.Contains(err.Error(), "Fig3a") ||
		!strings.Contains(err.Error(), "allocs/op") || !strings.Contains(err.Error(), "B/op") {
		t.Fatalf("err = %v\n%s", err, sb.String())
	}
	// A looser memory threshold tolerates the same delta.
	sb.Reset()
	if err := run([]string{"-memthreshold", "1000", old, new}, &sb); err != nil {
		t.Fatalf("memthreshold 1000: %v\n%s", err, sb.String())
	}
}

func TestCompareAllocFloorToleratesNoise(t *testing.T) {
	dir := t.TempDir()
	// 2 → 10 allocs is a 5x ratio but only +8 allocs — below the floor, so
	// a near-zero footprint never fails on one stray allocation.
	old := memSnapshot(t, dir, "BENCH_20260101_aaaa.json", map[string][3]float64{
		"Fig3a": {1000, 32, 2},
	})
	new := memSnapshot(t, dir, "BENCH_20260102_bbbb.json", map[string][3]float64{
		"Fig3a": {1000, 80, 10},
	})
	var sb strings.Builder
	if err := run([]string{old, new}, &sb); err != nil {
		t.Fatalf("floor did not absorb small drift: %v\n%s", err, sb.String())
	}
}

// rawSnapshot writes pre-formatted bench lines verbatim, for streams the
// map-based helpers cannot express (e.g. -count=N duplicate samples).
func rawSnapshot(t *testing.T, dir, name string, lines []string) string {
	t.Helper()
	var sb strings.Builder
	for _, line := range lines {
		b, err := json.Marshal(map[string]string{"Action": "output", "Output": line + "\n"})
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareMinOfCountSamples(t *testing.T) {
	dir := t.TempDir()
	old := memSnapshot(t, dir, "BENCH_20260101_aaaa.json", map[string][3]float64{
		"Fig3a": {1000, 1024, 100},
	})
	// Three -count samples of the candidate: two contention-inflated, one
	// clean. Min-of-N must gate on the clean one (1100 ns, 1.1x) instead of
	// the last (2500 ns, 2.5x).
	new := rawSnapshot(t, dir, "BENCH_20260102_bbbb.json", []string{
		"BenchmarkFig3a-4 \t 1\t 2000 ns/op\t 1024 B/op\t 100 allocs/op",
		"BenchmarkFig3a-4 \t 1\t 1100 ns/op\t 1024 B/op\t 100 allocs/op",
		"BenchmarkFig3a-4 \t 1\t 2500 ns/op\t 1024 B/op\t 100 allocs/op",
	})
	var sb strings.Builder
	if err := run([]string{old, new}, &sb); err != nil {
		t.Fatalf("min-of-count did not absorb contention spikes: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "1100") {
		t.Errorf("table should show the minimum sample:\n%s", sb.String())
	}
}

func TestCompareMixedMemColumns(t *testing.T) {
	dir := t.TempDir()
	// Baseline without -benchmem, candidate with: only ns/op is gated.
	old := snapshot(t, dir, "BENCH_20260101_aaaa.json", map[string]float64{"Fig3a": 1000})
	new := memSnapshot(t, dir, "BENCH_20260102_bbbb.json", map[string][3]float64{
		"Fig3a": {1050, 1 << 20, 100000},
	})
	var sb strings.Builder
	if err := run([]string{old, new}, &sb); err != nil {
		t.Fatalf("mixed columns: %v\n%s", err, sb.String())
	}
}

func TestCompareGlobNewestTwo(t *testing.T) {
	dir := t.TempDir()
	oldest := snapshot(t, dir, "BENCH_20260101_aaaa.json", map[string]float64{"Fig3a": 99999})
	mid := snapshot(t, dir, "BENCH_20260102_bbbb.json", map[string]float64{"Fig3a": 1000})
	newest := snapshot(t, dir, "BENCH_20260103_cccc.json", map[string]float64{"Fig3a": 1050})
	for i, p := range []string{oldest, mid, newest} {
		mt := time.Now().Add(time.Duration(i-3) * time.Hour)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	out := sb.String()
	if strings.Contains(out, "aaaa") || !strings.Contains(out, "bbbb") || !strings.Contains(out, "cccc") {
		t.Errorf("wrong snapshot pair:\n%s", out)
	}
}

func TestCompareNothingToCompare(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "nothing to compare") {
		t.Errorf("output:\n%s", sb.String())
	}
	snapshot(t, dir, "BENCH_20260101_aaaa.json", map[string]float64{"Fig3a": 1})
	sb.Reset()
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "nothing to compare") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestCompareErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-smoke", "("}, &sb); err == nil {
		t.Error("bad regexp accepted")
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "BENCH_20260101_x.json")
	if err := os.WriteFile(empty, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ok := snapshot(t, dir, "BENCH_20260102_y.json", map[string]float64{"Fig3a": 1})
	if err := run([]string{empty, ok}, &sb); err == nil {
		t.Error("empty snapshot accepted")
	}
}

func TestCompareRejectsNaNSmokeEntry(t *testing.T) {
	dir := t.TempDir()
	old := snapshot(t, dir, "BENCH_20260101_aaaa.json", map[string]float64{"Fig3a": 1000})
	// A crashed or truncated run can record NaN; gating must fail loudly,
	// not treat the entry as 0 (which would read as an infinite speedup).
	new := rawSnapshot(t, dir, "BENCH_20260102_bbbb.json", []string{
		"BenchmarkFig3a-4 \t 1\t NaN ns/op",
	})
	var sb strings.Builder
	err := run([]string{"-smoke", smokeSet, old, new}, &sb)
	if err == nil || !strings.Contains(err.Error(), "unusable ns/op") || !strings.Contains(err.Error(), "Fig3a") {
		t.Fatalf("err = %v\n%s", err, sb.String())
	}
	// NaN memory columns are equally unusable.
	sb.Reset()
	nanMem := rawSnapshot(t, dir, "BENCH_20260103_cccc.json", []string{
		"BenchmarkFig3a-4 \t 1\t 1000 ns/op\t NaN B/op\t NaN allocs/op",
	})
	err = run([]string{"-smoke", smokeSet, old, nanMem}, &sb)
	if err == nil || !strings.Contains(err.Error(), "NaN memory columns") {
		t.Fatalf("err = %v\n%s", err, sb.String())
	}
}

func TestCompareRejectsAbsentSmokeEntry(t *testing.T) {
	dir := t.TempDir()
	old := snapshot(t, dir, "BENCH_20260101_aaaa.json", map[string]float64{
		"Fig3a": 1000, "Weights": 500,
	})
	new := snapshot(t, dir, "BENCH_20260102_bbbb.json", map[string]float64{
		"Fig3a": 1000, // Weights vanished from the candidate
	})
	var sb strings.Builder
	err := run([]string{"-smoke", smokeSet, old, new}, &sb)
	if err == nil || !strings.Contains(err.Error(), "Weights absent from") {
		t.Fatalf("err = %v\n%s", err, sb.String())
	}
	// Without an explicit smoke pattern, differing benchmark sets are the
	// normal cross-commit case and only common names are compared.
	sb.Reset()
	if err := run([]string{old, new}, &sb); err != nil {
		t.Fatalf("gate-all with differing sets: %v\n%s", err, sb.String())
	}
}

func TestCompareRejectsEmptySmokeMatch(t *testing.T) {
	dir := t.TempDir()
	old := snapshot(t, dir, "BENCH_20260101_aaaa.json", map[string]float64{"Fig3a": 1000})
	new := snapshot(t, dir, "BENCH_20260102_bbbb.json", map[string]float64{"Fig3a": 1000})
	var sb strings.Builder
	err := run([]string{"-smoke", "^NoSuchBenchmark$", old, new}, &sb)
	if err == nil || !strings.Contains(err.Error(), "matched no benchmark") {
		t.Fatalf("err = %v\n%s", err, sb.String())
	}
}

func TestCompareSingleExplicitFileRejected(t *testing.T) {
	dir := t.TempDir()
	one := snapshot(t, dir, "BENCH_20260101_aaaa.json", map[string]float64{"Fig3a": 1})
	var sb strings.Builder
	if err := run([]string{one}, &sb); err == nil {
		t.Error("single explicit file accepted")
	}
}
