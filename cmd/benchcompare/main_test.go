package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// snapshot writes a minimal go-test-json bench stream.
func snapshot(t *testing.T, dir, name string, ns map[string]float64) string {
	t.Helper()
	var sb strings.Builder
	for bench, v := range ns {
		line := fmt.Sprintf("Benchmark%s-4 \t       1\t%10.0f ns/op\n", bench, v)
		b, err := json.Marshal(map[string]string{"Action": "output", "Output": line})
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// smokeSet mirrors the Makefile's SMOKE variable for tests that exercise
// the narrowed gate.
const smokeSet = `^(Fig3a|Fig4[abcd]|Weights|DegreeLargeC|WeightsLargeC)$`

func TestComparePasses(t *testing.T) {
	dir := t.TempDir()
	old := snapshot(t, dir, "BENCH_20260101_aaaa.json", map[string]float64{
		"Fig3a": 1000, "Weights": 500, "Other": 100,
	})
	new := snapshot(t, dir, "BENCH_20260102_bbbb.json", map[string]float64{
		"Fig3a": 1100, "Weights": 450, "Other": 1000, // Other is outside the smoke set
	})
	var sb strings.Builder
	if err := run([]string{"-smoke", smokeSet, old, new}, &sb); err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "OK: no gated benchmark regressed") {
		t.Errorf("output:\n%s", sb.String())
	}
	// Without -smoke every common benchmark is gated, so the Other
	// regression now fails the comparison.
	sb.Reset()
	if err := run([]string{old, new}, &sb); err == nil || !strings.Contains(err.Error(), "Other") {
		t.Errorf("default gate-all: err = %v", err)
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	old := snapshot(t, dir, "BENCH_20260101_aaaa.json", map[string]float64{"Fig3a": 1000})
	new := snapshot(t, dir, "BENCH_20260102_bbbb.json", map[string]float64{"Fig3a": 1500})
	var sb strings.Builder
	err := run([]string{old, new}, &sb)
	if err == nil || !strings.Contains(err.Error(), "Fig3a") {
		t.Fatalf("err = %v\n%s", err, sb.String())
	}
	// A looser threshold tolerates the same delta.
	sb.Reset()
	if err := run([]string{"-threshold", "1.6", old, new}, &sb); err != nil {
		t.Fatalf("threshold 1.6: %v", err)
	}
}

func TestCompareGlobNewestTwo(t *testing.T) {
	dir := t.TempDir()
	oldest := snapshot(t, dir, "BENCH_20260101_aaaa.json", map[string]float64{"Fig3a": 99999})
	mid := snapshot(t, dir, "BENCH_20260102_bbbb.json", map[string]float64{"Fig3a": 1000})
	newest := snapshot(t, dir, "BENCH_20260103_cccc.json", map[string]float64{"Fig3a": 1050})
	for i, p := range []string{oldest, mid, newest} {
		mt := time.Now().Add(time.Duration(i-3) * time.Hour)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	out := sb.String()
	if strings.Contains(out, "aaaa") || !strings.Contains(out, "bbbb") || !strings.Contains(out, "cccc") {
		t.Errorf("wrong snapshot pair:\n%s", out)
	}
}

func TestCompareNothingToCompare(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "nothing to compare") {
		t.Errorf("output:\n%s", sb.String())
	}
	snapshot(t, dir, "BENCH_20260101_aaaa.json", map[string]float64{"Fig3a": 1})
	sb.Reset()
	if err := run([]string{"-dir", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "nothing to compare") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestCompareErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-smoke", "("}, &sb); err == nil {
		t.Error("bad regexp accepted")
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "BENCH_20260101_x.json")
	if err := os.WriteFile(empty, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ok := snapshot(t, dir, "BENCH_20260102_y.json", map[string]float64{"Fig3a": 1})
	if err := run([]string{empty, ok}, &sb); err == nil {
		t.Error("empty snapshot accepted")
	}
}

func TestCompareSingleExplicitFileRejected(t *testing.T) {
	dir := t.TempDir()
	one := snapshot(t, dir, "BENCH_20260101_aaaa.json", map[string]float64{"Fig3a": 1})
	var sb strings.Builder
	if err := run([]string{one}, &sb); err == nil {
		t.Error("single explicit file accepted")
	}
}
