// Command anond serves the anonymity analysis stack as a daemon: the
// scenario layer's three backends, the degradation analysis, and the
// §5.4 optimizer behind an HTTP JSON API (see internal/anond for the
// endpoint reference).
//
// Usage:
//
//	anond -addr :8080
//	anond -addr :8080 -rate 10 -burst 20      # per-client 10 req/s, bursts of 20
//	curl -d '{"n":100,"compromised":1,"strategy":"uniform:1,5"}' localhost:8080/v1/scenario
//	curl -d '{"n":1000,"compromised":30,"backend":"mc","strategy":"fixed:5","messages":200000}' 'localhost:8080/v1/scenario?stream=1'
//
// SIGTERM or SIGINT begins a graceful drain: health flips to 503, new
// compute requests are refused, in-flight runs finish (bounded by
// -drain-timeout), and the final metrics snapshot is flushed to stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"anonmix/internal/anond"
	"anonmix/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if !cliutil.Silent(err) {
			fmt.Fprintln(os.Stderr, "anond:", err)
		}
		os.Exit(cliutil.Code(err))
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("anond", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		rate    = fs.Float64("rate", 0, "per-client compute requests per second (0 = unlimited)")
		burst   = fs.Float64("burst", 8, "per-client burst capacity")
		maxBody = fs.Int64("max-body", 1<<20, "request body cap in bytes")
		drain   = fs.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return cliutil.Usage(err)
	}

	srv := anond.New(anond.Options{
		RatePerSecond: *rate,
		Burst:         *burst,
		MaxBodyBytes:  *maxBody,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.SetPrefix("anond: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.Printf("listening on %s", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received, draining (timeout %s)", *drain)

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Handler-level drain first (reject new compute work, wait for
	// in-flight runs), then the socket-level shutdown.
	if err := srv.Drain(dctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}

	snap, err := json.Marshal(srv.Metrics())
	if err != nil {
		return err
	}
	log.Printf("final metrics: %s", snap)
	return nil
}
