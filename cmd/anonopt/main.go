// Command anonopt solves the paper's path-length-distribution design
// problem (§5.4): given a system size, a compromised-node count, and a
// target expected path length, it prints the distribution maximizing the
// anonymity degree together with the baselines it beats.
//
// Usage:
//
//	anonopt -n 100 -c 1 -mean 10
//	anonopt -n 100 -c 1            # unconstrained (best possible strategy)
//	anonopt -n 100 -c 1 -mean 5 -compare 'freedom;onionrouting1;uniform:1,5'
//
// -compare takes pathsel registry specs and evaluates each against the
// optimum through the scenario layer's exact backend.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"anonmix/internal/dist"
	"anonmix/internal/entropy"
	"anonmix/internal/optimize"
	"anonmix/internal/pathsel"
	"anonmix/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "anonopt:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("anonopt", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 100, "number of nodes")
		c       = fs.Int("c", 1, "number of compromised nodes")
		mean    = fs.Float64("mean", -1, "target expected path length (<0: unconstrained)")
		hi      = fs.Int("max", -1, "maximum path length (default N-1)")
		compare = fs.String("compare", "", "semicolon-separated strategy specs to rank against the optimum, e.g. 'freedom;uniform:1,5'")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The scenario layer hands out the process-shared memoizing engine, so
	// the optimizer, the baselines, and the -compare rows reuse one cache.
	engine, err := scenario.Engine(*n, *c)
	if err != nil {
		return err
	}
	if *hi < 0 {
		*hi = *n - 1
	}
	target := optimize.UnconstrainedMean()
	if *mean >= 0 {
		target = *mean
	}
	res, err := optimize.Maximize(optimize.Problem{
		Engine: engine, Lo: 0, Hi: *hi, Mean: target,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "System: N=%d, C=%d (receiver compromised), max anonymity log2(N) = %.4f bits\n",
		*n, *c, engine.MaxAnonymity())
	if *mean >= 0 {
		fmt.Fprintf(w, "Constraint: E[path length] = %g\n", *mean)
	} else {
		fmt.Fprintf(w, "Constraint: none (globally optimal strategy)\n")
	}
	fmt.Fprintf(w, "\nOptimal distribution (atoms with mass > 1e-6):\n")
	lo, hiS := res.Dist.Support()
	for l := lo; l <= hiS; l++ {
		if p := res.Dist.PMF(l); p > 1e-6 {
			fmt.Fprintf(w, "  P(l = %3d) = %.6f\n", l, p)
		}
	}
	fmt.Fprintf(w, "\nAchieved H*(S)      = %.6f bits (%.2f%% of maximum)\n",
		res.H, 100*entropy.Normalized(res.H, *n))
	fmt.Fprintf(w, "Mean path length    = %.4f\n", res.Dist.Mean())
	fmt.Fprintf(w, "Solver iterations   = %d (converged: %v)\n", res.Iterations, res.Converged)

	// Baselines at the same mean, when constrained.
	if *mean >= 0 && *mean == float64(int(*mean)) {
		m := int(*mean)
		if f, err := dist.NewFixed(m); err == nil {
			if hf, err := engine.AnonymityDegree(f); err == nil {
				fmt.Fprintf(w, "\nBaselines at the same mean:\n")
				fmt.Fprintf(w, "  F(%d)        H* = %.6f  (Δ = %+.6f)\n", m, hf, res.H-hf)
			}
		}
		if _, hu, err := optimize.BestUniform(engine, m, 0, *hi); err == nil {
			fmt.Fprintf(w, "  best U(a,b)  H* = %.6f  (Δ = %+.6f)\n", hu, res.H-hu)
		}
		if tp, htp, err := optimize.BestTwoPoint(engine, *mean, 0, *hi); err == nil {
			fmt.Fprintf(w, "  best %s H* = %.6f  (Δ = %+.6f)\n", tp, htp, res.H-htp)
		}
	}

	// Named strategies from the registry, evaluated through the scenario
	// layer on the same exact backend.
	if *compare != "" {
		fmt.Fprintf(w, "\nNamed strategies (exact backend):\n")
		for _, spec := range pathsel.SplitSpecs(*compare) {
			sres, err := scenario.Run(scenario.Config{
				N:            *n,
				Backend:      scenario.BackendExact,
				StrategySpec: spec,
				Adversary:    scenario.Adversary{Count: *c},
			})
			if err != nil {
				return fmt.Errorf("-compare %s: %w", spec, err)
			}
			fmt.Fprintf(w, "  %-24s H* = %.6f  (Δ = %+.6f, mean %.2f)\n",
				sres.Strategy.Name, sres.H, res.H-sres.H, sres.Strategy.Length.Mean())
		}
	}
	return nil
}
