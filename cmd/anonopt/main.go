// Command anonopt solves the paper's path-length-distribution design
// problem (§5.4): given a system size, a compromised-node count, and a
// target expected path length, it prints the distribution maximizing the
// anonymity degree together with the baselines it beats.
//
// Usage:
//
//	anonopt -n 100 -c 1 -mean 10
//	anonopt -n 100 -c 1            # unconstrained (best possible strategy)
//	anonopt -n 100 -c 1 -mean 5 -compare 'freedom;onionrouting1;uniform:1,5'
//	anonopt -n 40 -c 4 -max 12 -epochs 'msgs=1000;msgs=1000,comp=4;msgs=1000,comp=4'
//
// -compare takes pathsel registry specs and evaluates each against the
// optimum through the scenario layer's exact backend.
//
// -epochs takes the timeline syntax of anonsim (semicolon-separated epochs
// of msgs/rounds/join/leave/comp/recover fields) and switches to the
// epoch-aware solver: it re-optimizes the distribution for every epoch's
// (N, C) — warm-started through the delta engine cache — solves the joint
// single-distribution problem for the whole timeline, and compares both
// against the static epoch-0 optimum under the traffic-weighted blended
// anonymity degree.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"anonmix/internal/cliutil"
	"anonmix/internal/dist"
	"anonmix/internal/entropy"
	"anonmix/internal/optimize"
	"anonmix/internal/pathsel"
	"anonmix/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !cliutil.Silent(err) {
			// %v prints the full wrapped sentinel chain.
			fmt.Fprintln(os.Stderr, "anonopt:", err)
		}
		// Exit 2 for configuration/usage errors, 1 for runtime failures
		// (see internal/cliutil). Optimizer problem errors are
		// configuration errors too: the solvers only see what the flags
		// built.
		os.Exit(exitCode(err))
	}
}

// exitCode extends the shared contract with the optimizer's sentinels:
// an invalid or infeasible problem is a usage error — it was assembled
// verbatim from the command line.
func exitCode(err error) int {
	if errors.Is(err, optimize.ErrBadProblem) || errors.Is(err, optimize.ErrInfeasible) {
		return 2
	}
	return cliutil.Code(err)
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("anonopt", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 100, "number of nodes")
		c       = fs.Int("c", 1, "number of compromised nodes")
		mean    = fs.Float64("mean", -1, "target expected path length (<0: unconstrained)")
		hi      = fs.Int("max", -1, "maximum path length (default N-1)")
		compare = fs.String("compare", "", "semicolon-separated strategy specs to rank against the optimum, e.g. 'freedom;uniform:1,5'")
		epochs  = fs.String("epochs", "", "timeline of population epochs (anonsim syntax, e.g. 'msgs=1000;msgs=1000,comp=2'); switches to the epoch-aware solver")
	)
	if err := fs.Parse(args); err != nil {
		return cliutil.Usage(err)
	}
	// The scenario layer hands out the process-shared memoizing engine, so
	// the optimizer, the baselines, and the -compare rows reuse one cache.
	engine, err := scenario.Engine(*n, *c)
	if err != nil {
		return err
	}
	target := optimize.UnconstrainedMean()
	if *mean >= 0 {
		target = *mean
	}
	if *epochs != "" {
		// The support default is resolved inside runTimeline: a shrinking
		// timeline caps it at min_e N_e - 1, not N - 1.
		return runTimeline(w, *n, *c, *hi, target, *epochs)
	}
	if *hi < 0 {
		*hi = *n - 1
	}
	res, err := optimize.Maximize(optimize.Problem{
		Engine: engine, Lo: 0, Hi: *hi, Mean: target,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "System: N=%d, C=%d (receiver compromised), max anonymity log2(N) = %.4f bits\n",
		*n, *c, engine.MaxAnonymity())
	if *mean >= 0 {
		fmt.Fprintf(w, "Constraint: E[path length] = %g\n", *mean)
	} else {
		fmt.Fprintf(w, "Constraint: none (globally optimal strategy)\n")
	}
	fmt.Fprintf(w, "\nOptimal distribution (atoms with mass > 1e-6):\n")
	lo, hiS := res.Dist.Support()
	for l := lo; l <= hiS; l++ {
		if p := res.Dist.PMF(l); p > 1e-6 {
			fmt.Fprintf(w, "  P(l = %3d) = %.6f\n", l, p)
		}
	}
	fmt.Fprintf(w, "\nAchieved H*(S)      = %.6f bits (%.2f%% of maximum)\n",
		res.H, 100*entropy.Normalized(res.H, *n))
	fmt.Fprintf(w, "Mean path length    = %.4f\n", res.Dist.Mean())
	fmt.Fprintf(w, "Solver iterations   = %d (converged: %v)\n", res.Iterations, res.Converged)

	// Baselines at the same mean, when constrained.
	if *mean >= 0 && *mean == float64(int(*mean)) {
		m := int(*mean)
		if f, err := dist.NewFixed(m); err == nil {
			if hf, err := engine.AnonymityDegree(f); err == nil {
				fmt.Fprintf(w, "\nBaselines at the same mean:\n")
				fmt.Fprintf(w, "  F(%d)        H* = %.6f  (Δ = %+.6f)\n", m, hf, res.H-hf)
			}
		}
		if _, hu, err := optimize.BestUniform(engine, m, 0, *hi); err == nil {
			fmt.Fprintf(w, "  best U(a,b)  H* = %.6f  (Δ = %+.6f)\n", hu, res.H-hu)
		}
		if tp, htp, err := optimize.BestTwoPoint(engine, *mean, 0, *hi); err == nil {
			fmt.Fprintf(w, "  best %s H* = %.6f  (Δ = %+.6f)\n", tp, htp, res.H-htp)
		}
	}

	// Named strategies from the registry, evaluated through the scenario
	// layer on the same exact backend.
	if *compare != "" {
		fmt.Fprintf(w, "\nNamed strategies (exact backend):\n")
		for _, spec := range pathsel.SplitSpecs(*compare) {
			sres, err := scenario.Run(scenario.Config{
				N:            *n,
				Backend:      scenario.BackendExact,
				StrategySpec: spec,
				Adversary:    scenario.Adversary{Count: *c},
			})
			if err != nil {
				return fmt.Errorf("-compare %s: %w", spec, err)
			}
			fmt.Fprintf(w, "  %-24s H* = %.6f  (Δ = %+.6f, mean %.2f)\n",
				sres.Strategy.Name, sres.H, res.H-sres.H, sres.Strategy.Length.Mean())
		}
	}
	return nil
}

// runTimeline is the -epochs path: the §5.4 design problem lifted to a
// dynamic population. The epoch engines come from the scenario cache, so
// consecutive epochs are delta-derived members of one engine family.
func runTimeline(w io.Writer, n, c, hi int, mean float64, epochs string) error {
	timeline, err := scenario.ParseTimeline(epochs)
	if err != nil {
		return err
	}
	states, err := scenario.TimelineStates(n, c, timeline)
	if err != nil {
		return err
	}
	minN := states[0].N
	for _, st := range states {
		if st.N < minN {
			minN = st.N
		}
	}
	if hi < 0 {
		hi = minN - 1
	}
	tp := optimize.TimelineProblem{Lo: 0, Hi: hi, Mean: mean}
	for _, st := range states {
		e, err := scenario.Engine(st.N, st.C)
		if err != nil {
			return err
		}
		tp.Epochs = append(tp.Epochs, optimize.EpochProblem{Engine: e, Weight: st.Weight})
	}
	res, err := optimize.MaximizeTimeline(tp)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Timeline: %d epochs over base N=%d, C=%d (receiver compromised), support [0,%d]\n",
		len(states), n, c, hi)
	if !math.IsNaN(mean) {
		fmt.Fprintf(w, "Constraint: E[path length] = %g (every epoch)\n", mean)
	} else {
		fmt.Fprintf(w, "Constraint: none (globally optimal per epoch)\n")
	}
	fmt.Fprintf(w, "\nPer-epoch re-optimization:\n")
	fmt.Fprintf(w, "  %-5s %5s %5s %8s %12s %6s %10s\n", "epoch", "N", "C", "weight", "H* (bits)", "iters", "mean len")
	for i, st := range states {
		r := res.PerEpoch[i]
		fmt.Fprintf(w, "  %-5d %5d %5d %8.4f %12.6f %6d %10.4f\n",
			st.Index, st.N, st.C, st.Weight, r.H, r.Iterations, r.Dist.Mean())
	}

	fmt.Fprintf(w, "\nJoint distribution (one strategy for the whole timeline; atoms with mass > 1e-6):\n")
	lo, hiS := res.Joint.Dist.Support()
	for l := lo; l <= hiS; l++ {
		if p := res.Joint.Dist.PMF(l); p > 1e-6 {
			fmt.Fprintf(w, "  P(l = %3d) = %.6f\n", l, p)
		}
	}

	// The static policy: the epoch-0 optimum deployed unchanged, scored by
	// the same traffic-weighted blend as the other two.
	staticH, err := optimize.EvaluateTimeline(tp, res.PerEpoch[0].Dist)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nBlended H (traffic-weighted across epochs):\n")
	fmt.Fprintf(w, "  static (epoch-0 optimum)  = %.6f bits\n", staticH)
	fmt.Fprintf(w, "  joint optimum             = %.6f bits  (Δ vs static = %+.6f)\n",
		res.Joint.H, res.Joint.H-staticH)
	fmt.Fprintf(w, "  per-epoch re-optimization = %.6f bits  (Δ vs static = %+.6f)\n",
		res.PerEpochH, res.PerEpochH-staticH)

	st := scenario.CacheStats()
	fmt.Fprintf(w, "\nEngine cache: %d hits, %d misses (%d delta-derived), %d/%d resident\n",
		st.Hits, st.Misses, st.DeltaDerived, st.Size, st.Capacity)
	return nil
}
