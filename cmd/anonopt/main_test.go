package main

import (
	"strings"
	"testing"
)

func TestRunConstrained(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "60", "-c", "1", "-mean", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"N=60, C=1",
		"E[path length] = 8",
		"Optimal distribution",
		"Achieved H*(S)",
		"Baselines at the same mean",
		"F(8)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// The optimization gain over the fixed baseline must be positive.
	if !strings.Contains(out, "(Δ = +") {
		t.Errorf("no positive gain reported:\n%s", out)
	}
}

func TestRunUnconstrained(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "40", "-c", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "globally optimal") {
		t.Errorf("missing unconstrained note:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "1"}, &sb); err == nil {
		t.Error("n=1 accepted")
	}
	if err := run([]string{"-n", "50", "-mean", "200"}, &sb); err == nil {
		t.Error("infeasible mean accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunCompareSpecs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "40", "-c", "1", "-mean", "4", "-compare", "freedom;uniform:1,5"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Named strategies (exact backend)", "Freedom", "U(1,5)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	if err := run([]string{"-n", "40", "-c", "1", "-compare", "warp:9"}, &sb); err == nil {
		t.Error("bad -compare spec accepted")
	}
}
