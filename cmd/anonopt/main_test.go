package main

import (
	"strings"
	"testing"
)

func TestRunConstrained(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "60", "-c", "1", "-mean", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"N=60, C=1",
		"E[path length] = 8",
		"Optimal distribution",
		"Achieved H*(S)",
		"Baselines at the same mean",
		"F(8)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// The optimization gain over the fixed baseline must be positive.
	if !strings.Contains(out, "(Δ = +") {
		t.Errorf("no positive gain reported:\n%s", out)
	}
}

func TestRunUnconstrained(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "40", "-c", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "globally optimal") {
		t.Errorf("missing unconstrained note:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "1"}, &sb); err == nil {
		t.Error("n=1 accepted")
	}
	if err := run([]string{"-n", "50", "-mean", "200"}, &sb); err == nil {
		t.Error("infeasible mean accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunEpochs(t *testing.T) {
	var sb strings.Builder
	args := []string{"-n", "30", "-c", "2", "-max", "10",
		"-epochs", "msgs=1000;msgs=2000,comp=2,leave=3;msgs=1000,comp=2"}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Timeline: 3 epochs over base N=30, C=2",
		"Per-epoch re-optimization:",
		"Joint distribution",
		"Blended H (traffic-weighted across epochs):",
		"static (epoch-0 optimum)",
		"Engine cache:",
		"delta-derived",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// Shrinking timelines default the support below the base N; a bad
	// timeline or an infeasible epoch mean must error.
	if err := run([]string{"-n", "20", "-c", "1", "-epochs", "bogus"}, &sb); err == nil {
		t.Error("bad -epochs syntax accepted")
	}
	if err := run([]string{"-n", "20", "-c", "1", "-epochs", "msgs=1;leave=19"}, &sb); err == nil {
		t.Error("timeline shrinking below 2 nodes accepted")
	}
	if err := run([]string{"-n", "20", "-c", "1", "-mean", "18", "-epochs", "msgs=1;leave=5"}, &sb); err == nil {
		t.Error("mean infeasible for the shrunk support accepted")
	}
}

func TestRunCompareSpecs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "40", "-c", "1", "-mean", "4", "-compare", "freedom;uniform:1,5"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Named strategies (exact backend)", "Freedom", "U(1,5)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	if err := run([]string{"-n", "40", "-c", "1", "-compare", "warp:9"}, &sb); err == nil {
		t.Error("bad -compare spec accepted")
	}
}
