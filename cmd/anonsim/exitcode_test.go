package main

import (
	"io"
	"strings"
	"testing"

	"anonmix/internal/cliutil"
)

// TestExitCodes pins the CLI contract end to end through run(): exit 2
// for configuration/usage errors, 1 for capability refusals, 0 for
// success — and the error message carries the wrapped sentinel chain.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantMsg  string // substring of the error, "" for success
	}{
		{"success", []string{"-n", "15", "-c", "1", "-backend", "exact", "-strategy", "fixed:4"}, 0, ""},
		{"bad n", []string{"-n", "1"}, 2, "invalid configuration"},
		{"bad backend", []string{"-backend", "quantum"}, 2, "unknown backend"},
		{"bad strategy spec", []string{"-strategy", "uniform:9,1"}, 2, ""},
		{"bad flag", []string{"-n", "notanumber"}, 2, "invalid value"},
		{"unknown flag", []string{"-frobnicate"}, 2, "not defined"},
		{"capability refusal", []string{"-backend", "exact", "-protocol", "crowds", "-pf", "0.7", "-n", "20", "-c", "1"}, 1, "backend"},
	}
	for _, tc := range cases {
		err := run(tc.args, io.Discard)
		if got := cliutil.Code(err); got != tc.wantCode {
			t.Errorf("%s: exit code %d, want %d (err: %v)", tc.name, got, tc.wantCode, err)
		}
		if tc.wantMsg != "" && (err == nil || !strings.Contains(err.Error(), tc.wantMsg)) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.wantMsg)
		}
	}
}
