package main

import (
	"strings"
	"testing"
)

func TestRunUniformStrategy(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-n", "20", "-c", "2", "-strategy", "uniform", "-a", "0", "-b", "6",
		"-messages", "2000", "-seed", "3",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Testbed: N=20, C=2",
		"Empirical anonymity degree",
		"Exact engine H*(S)",
		"within 4σ) ✓",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRunFixedAndPresets(t *testing.T) {
	for _, strat := range []string{"fixed", "pipenet", "onionrouting1"} {
		var sb strings.Builder
		err := run([]string{
			"-n", "15", "-c", "1", "-strategy", strat, "-l", "4",
			"-messages", "500", "-seed", "1",
		}, &sb)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if !strings.Contains(sb.String(), "Exact engine") {
			t.Errorf("%s: missing comparison:\n%s", strat, sb.String())
		}
	}
}

func TestRunCrowds(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-n", "15", "-c", "2", "-strategy", "crowds", "-pf", "0.7",
		"-messages", "2000", "-seed", "5",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Crowds testbed",
		"Reiter–Rubin closed form",
		"Probable innocence",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRunRoundsDegradation(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-n", "20", "-c", "2", "-backend", "mc", "-strategy", "uniform", "-a", "1", "-b", "5",
		"-messages", "600", "-rounds", "5", "-seed", "3",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Degradation over 5 rounds (600 sessions)",
		"round k",
		"H_k (bits)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRunCrowdsRounds(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-n", "16", "-c", "2", "-strategy", "crowds", "-pf", "0.7",
		"-messages", "300", "-rounds", "4", "-seed", "2",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"1200 messages from honest jondos",
		"top predecessor count",
		"Degradation over 4 rounds (300 sessions)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-strategy", "bogus"}, &sb); err == nil {
		t.Error("unknown strategy accepted")
	}
	if err := run([]string{"-n", "1"}, &sb); err == nil {
		t.Error("n=1 accepted")
	}
	if err := run([]string{"-zzz"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-rounds", "-2"}, &sb); err == nil {
		t.Error("negative rounds accepted")
	}
	if err := run([]string{"-strategy", "crowds", "-pf", "1.5"}, &sb); err == nil {
		t.Error("pf=1.5 accepted")
	}
}

// TestRunEpochs: the -epochs flag drives a dynamic-population run end to
// end, printing the per-epoch trajectory; a messages timeline supersedes
// the -messages default without requiring -messages 0.
func TestRunEpochs(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-n", "20", "-c", "3", "-strategy", "uniform", "-a", "1", "-b", "5",
		"-epochs", "msgs=2000;msgs=2000,join=10,comp=2;msgs=2000,leave=5",
		"-seed", "3",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Dynamic population (3 epochs)",
		"within 4σ) ✓", // blended empirical vs exact mixture
		"30      5",    // epoch 1: N=30 after 10 joins, C=5 after 2 compromises
		"25      5",    // epoch 2: N=25 after 5 leaves
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

// TestRunEpochsRounds: a rounds timeline degrades across phases and prints
// both the epoch table and the blended curve.
func TestRunEpochsRounds(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-n", "16", "-c", "2", "-strategy", "fixed", "-l", "3",
		"-backend", "exact", "-epochs", "rounds=3;rounds=3,comp=3",
		"-messages", "400", "-seed", "5",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Dynamic population (2 epochs)",
		"Degradation over 6 rounds (400 sessions)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

// TestRunEpochsErrors: malformed epoch specs fail with the scenario
// layer's uniform configuration error.
func TestRunEpochsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-epochs", "warp=3"},
		{"-epochs", "msgs=100;rounds=2"},
		{"-epochs", "msgs=100", "-messages", "50"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunFaults(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-n", "20", "-c", "2", "-strategy", "uniform", "-a", "1", "-b", "5",
		"-messages", "2000", "-seed", "3",
		"-faults", "loss=0.1", "-policy", "reroute", "-attempts", "6",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Fault plan loss=0.1, policy reroute:",
		"Delivery rate",
		"attempts/message",
		"Retry-degraded H*(S)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRunFaultsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-faults", "loss=1.5"},                  // bad plan value
		{"-faults", "loss"},                      // not key=value
		{"-policy", "teleport"},                  // unknown policy
		{"-policy", "reroute"},                   // policy without a plan
		{"-faults", "crash=99@5", "-n", "10"},    // crash node outside population
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v: expected error, got output:\n%s", args, sb.String())
		}
	}
}
