package main

// Tests of the scenario-layer flags: every backend reachable from one
// command, strategy specs resolved through the pathsel registry.

import (
	"strings"
	"testing"
)

func TestRunExactBackend(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-backend", "exact", "-n", "40", "-c", "1", "-strategy", "fixed:5"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Backend exact", "Exact H*(S)", "Maximum log2(N)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRunMonteCarloBackend(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-backend", "mc", "-n", "30", "-c", "2", "-strategy", "uniform:0,6",
		"-messages", "5000", "-seed", "2",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Backend mc", "Estimated H*(S)", "95% CI", "Exact engine H*(S)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRunSpecStrategies(t *testing.T) {
	// Full registry specs work directly, with the legacy parameter flags
	// ignored.
	var sb strings.Builder
	err := run([]string{
		"-n", "25", "-c", "2", "-strategy", "pipenet", "-messages", "1000", "-seed", "4",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "PipeNet") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestRunOnionProtocol(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-protocol", "onion", "-n", "20", "-c", "2", "-strategy", "fixed:4",
		"-messages", "1500", "-seed", "6",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Protocol: onion") || !strings.Contains(out, "within 4σ) ✓") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunMixProtocol(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-protocol", "mix", "-batch", "4", "-n", "20", "-c", "2",
		"-strategy", "uniform:1,5", "-messages", "2000", "-seed", "8",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Protocol: mix") || !strings.Contains(out, "within 4σ) ✓") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunStrategiesList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-strategies"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"crowds:pf[,maxLen]", "uniform:a,b", "pipenet"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in registry listing:\n%s", want, out)
		}
	}
}

func TestRunBackendErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-backend", "quantum"}, &sb); err == nil {
		t.Error("unknown backend accepted")
	}
	if err := run([]string{"-protocol", "pigeon"}, &sb); err == nil {
		t.Error("unknown protocol accepted")
	}
	// Cyclic strategy on an analytic backend: the capability error.
	if err := run([]string{"-backend", "exact", "-strategy", "crowds:0.7", "-protocol", "onion"}, &sb); err == nil {
		t.Error("exact backend accepted a cyclic strategy")
	}
}

// TestRunCrowdsProtocolWithExplicitPf: -protocol crowds must honor -pf
// even when the strategy spec is not a coin-flip family, and refuse a
// pf-less crowds run instead of degenerating to pf=0.
func TestRunCrowdsProtocolWithExplicitPf(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-protocol", "crowds", "-pf", "0.6", "-n", "20", "-c", "2",
		"-strategy", "uniform:0,5", "-messages", "1500", "-seed", "2",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "pf=0.60") {
		t.Errorf("-pf not honored:\n%s", sb.String())
	}
	sb.Reset()
	err = run([]string{
		"-protocol", "crowds", "-n", "20", "-c", "2",
		"-strategy", "uniform:0,5", "-messages", "100",
	}, &sb)
	if err == nil || !strings.Contains(err.Error(), "forwarding probability") {
		t.Errorf("pf-less crowds run: err = %v", err)
	}
}
