// Command anonsim runs the goroutine-based rerouting testbed end to end:
// it builds an N-node network with C compromised nodes, sends messages
// under a chosen path-selection strategy, lets the passive adversary
// collect (time, predecessor, successor) tuples and infer sender
// posteriors, and reports the empirical anonymity degree next to the exact
// engine's H*(S).
//
// Usage:
//
//	anonsim -n 50 -c 3 -strategy uniform -a 0 -b 10 -messages 5000
//	anonsim -n 100 -c 1 -strategy fixed -l 5
//	anonsim -n 50 -c 2 -strategy crowds -pf 0.7   # predecessor analysis
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"anonmix/internal/adversary"
	"anonmix/internal/crowds"
	"anonmix/internal/events"
	"anonmix/internal/pathsel"
	"anonmix/internal/simnet"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "anonsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("anonsim", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 50, "number of nodes")
		c        = fs.Int("c", 2, "number of compromised nodes (0..c-1)")
		strategy = fs.String("strategy", "uniform", "fixed | uniform | pipenet | onionrouting1 | crowds")
		fixedL   = fs.Int("l", 5, "fixed strategy: path length")
		a        = fs.Int("a", 0, "uniform strategy: lower bound")
		b        = fs.Int("b", 10, "uniform strategy: upper bound")
		pf       = fs.Float64("pf", 0.7, "crowds strategy: forwarding probability")
		messages = fs.Int("messages", 5000, "messages to send")
		seed     = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	compromised := make([]trace.NodeID, *c)
	for i := range compromised {
		compromised[i] = trace.NodeID(i)
	}
	if *strategy == "crowds" {
		return runCrowds(w, *n, *c, *pf, *messages, *seed, compromised)
	}

	var strat pathsel.Strategy
	var err error
	switch *strategy {
	case "fixed":
		strat, err = pathsel.FixedLength(*fixedL)
	case "uniform":
		strat, err = pathsel.UniformLength(*a, *b)
	case "pipenet":
		strat = pathsel.PipeNet()
	case "onionrouting1":
		strat = pathsel.OnionRoutingI()
	default:
		err = fmt.Errorf("unknown strategy %q", *strategy)
	}
	if err != nil {
		return err
	}
	return runSimple(w, *n, *messages, *seed, compromised, strat)
}

// runSimple drives the testbed under a simple-path strategy and compares
// the adversary's empirical entropy against the exact engine.
func runSimple(w io.Writer, n, messages int, seed int64, compromised []trace.NodeID, strat pathsel.Strategy) error {
	engine, err := events.New(n, len(compromised))
	if err != nil {
		return err
	}
	sel, err := pathsel.NewSelector(n, strat)
	if err != nil {
		return err
	}
	analyst, err := adversary.NewAnalyst(engine, strat.Length, compromised)
	if err != nil {
		return err
	}
	nw, err := simnet.New(simnet.Config{N: n, Compromised: compromised, Seed: seed})
	if err != nil {
		return err
	}
	nw.Start()
	defer nw.Close()

	fmt.Fprintf(w, "Testbed: N=%d, C=%d, strategy %s, %d messages\n",
		n, len(compromised), strat, messages)
	start := time.Now()
	rng := stats.NewRand(seed)
	senders := make(map[trace.MessageID]trace.NodeID, messages)
	for i := 0; i < messages; i++ {
		sender := trace.NodeID(rng.Intn(n))
		path, err := sel.SelectPath(rng, sender)
		if err != nil {
			return err
		}
		id, err := nw.SendRoute(sender, path, nil)
		if err != nil {
			return err
		}
		senders[id] = sender
	}
	if err := nw.WaitSettled(5 * time.Minute); err != nil {
		return err
	}
	elapsed := time.Since(start)

	var sum stats.Summary
	var identified int
	for id, mt := range trace.Collate(nw.Tuples()) {
		sender := senders[id]
		if analyst.Compromised(sender) {
			sum.Add(0)
			identified++
			continue
		}
		post, err := analyst.Posterior(mt)
		if err != nil {
			return err
		}
		if post.H < 1e-9 {
			identified++
		}
		sum.Add(post.H)
	}
	exact, err := engine.AnonymityDegree(strat.Length)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Delivered %d messages in %v (%.0f msg/s)\n",
		len(senders), elapsed.Round(time.Millisecond), float64(messages)/elapsed.Seconds())
	fmt.Fprintf(w, "\nEmpirical anonymity degree = %.4f ± %.4f bits (95%% CI)\n", sum.Mean(), sum.CI95())
	fmt.Fprintf(w, "Exact engine H*(S)         = %.4f bits\n", exact)
	fmt.Fprintf(w, "Maximum log2(N)            = %.4f bits\n", math.Log2(float64(n)))
	fmt.Fprintf(w, "Messages fully deanonymized: %d (%.1f%%)\n",
		identified, 100*float64(identified)/float64(messages))
	if d := math.Abs(sum.Mean() - exact); d <= 4*sum.StdErr()+1e-3 {
		fmt.Fprintf(w, "Agreement: |empirical - exact| = %.5f (within 4σ) ✓\n", d)
	} else {
		fmt.Fprintf(w, "Agreement: |empirical - exact| = %.5f (OUTSIDE 4σ) ✗\n", d)
	}
	return nil
}

// runCrowds drives the jondo protocol and reports the Reiter–Rubin
// predecessor statistics.
func runCrowds(w io.Writer, n, c int, pf float64, messages int, seed int64, compromised []trace.NodeID) error {
	fwd, err := crowds.NewForwarder(n, pf, seed)
	if err != nil {
		return err
	}
	nw, err := simnet.New(simnet.Config{N: n, Compromised: compromised, Forwarder: fwd, Buffer: 8192})
	if err != nil {
		return err
	}
	nw.Start()
	defer nw.Close()

	fmt.Fprintf(w, "Crowds testbed: N=%d, C=%d, pf=%.2f, %d messages from honest jondos\n",
		n, c, pf, messages)
	rng := stats.NewRand(seed)
	senders := make(map[trace.MessageID]trace.NodeID, messages)
	for i := 0; i < messages; i++ {
		sender := trace.NodeID(c + rng.Intn(n-c))
		id, err := nw.Inject(sender, fwd.FirstHop(sender), simnet.Packet{})
		if err != nil {
			return err
		}
		senders[id] = sender
	}
	if err := nw.WaitSettled(5 * time.Minute); err != nil {
		return err
	}

	var exposed, hits int
	for id, mt := range trace.Collate(nw.Tuples()) {
		if len(mt.Reports) == 0 {
			continue
		}
		exposed++
		if mt.Reports[0].Pred == senders[id] {
			hits++
		}
	}
	theo, err := crowds.PredecessorProb(n, c, pf)
	if err != nil {
		return err
	}
	okPI, err := crowds.ProbableInnocence(n, c, pf)
	if err != nil {
		return err
	}
	hEvent, err := crowds.EventEntropy(n, c, pf)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Paths observed by a collaborator: %d of %d\n", exposed, messages)
	if exposed > 0 {
		fmt.Fprintf(w, "Empirical P(pred = initiator | observed) = %.4f\n", float64(hits)/float64(exposed))
	}
	fmt.Fprintf(w, "Reiter–Rubin closed form                 = %.4f\n", theo)
	fmt.Fprintf(w, "Posterior entropy of that event          = %.4f bits\n", hEvent)
	fmt.Fprintf(w, "Probable innocence: %v\n", okPI)
	return nil
}
