// Command anonsim runs one anonymity scenario end to end on any backend
// of the scenario layer: the exact engine, the Monte-Carlo estimator, or
// the sharded discrete-event testbed. Switching backend, strategy,
// protocol substrate, or threat model is a flag change, not a different
// program:
//
//	anonsim -n 50 -c 3 -strategy uniform:0,10 -messages 5000
//	anonsim -backend exact -n 100 -c 1 -strategy fixed:5
//	anonsim -backend mc -n 1000 -c 30 -strategy onionrouting1
//	anonsim -backend testbed -n 1000000 -c 1000 -strategy uniform:1,7 -messages 1000
//	anonsim -n 50 -c 2 -strategy crowds:0.7        # predecessor analysis
//	anonsim -protocol mix -batch 8 -strategy fixed:5
//	anonsim -rounds 16 -messages 2000              # repeated-communication degradation
//	anonsim -epochs 'msgs=2000;msgs=2000,join=10,comp=2'   # dynamic population
//	anonsim -epochs 'rounds=4;rounds=4,comp=3' -messages 1000  # degradation across churn
//	anonsim -faults 'loss=0.05,crash=3@100-400' -policy reroute   # fault injection
//
// Strategy specs come from the pathsel registry (see -strategies); the
// legacy flags -l, -a, -b, -pf still modify the bare names "fixed",
// "uniform", and "crowds".
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"anonmix/internal/cliutil"
	"anonmix/internal/faults"
	"anonmix/internal/pathsel"
	"anonmix/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !cliutil.Silent(err) {
			// %v prints the full wrapped sentinel chain.
			fmt.Fprintln(os.Stderr, "anonsim:", err)
		}
		// Exit 2 for configuration/usage errors (the invocation can never
		// succeed as written, including flag-parse failures), 1 for
		// runtime failures and backend refusals.
		os.Exit(cliutil.Code(err))
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("anonsim", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 50, "number of nodes")
		c          = fs.Int("c", 2, "number of compromised nodes (0..c-1)")
		strategy   = fs.String("strategy", "uniform", "strategy spec from the pathsel registry (see -strategies)")
		backend    = fs.String("backend", "testbed", "backend: exact | mc | testbed")
		protocol   = fs.String("protocol", "plain", "testbed substrate: plain | onion | crowds | mix")
		batch      = fs.Int("batch", 0, "mix protocol: threshold batch size (default 8)")
		fixedL     = fs.Int("l", 5, "fixed strategy: path length")
		a          = fs.Int("a", 0, "uniform strategy: lower bound")
		b          = fs.Int("b", 10, "uniform strategy: upper bound")
		pf         = fs.Float64("pf", 0.7, "crowds strategy: forwarding probability")
		messages   = fs.Int("messages", 5000, "messages to send (testbed) / trials (mc); sessions when -rounds > 1")
		rounds     = fs.Int("rounds", 1, "messages per sender session (repeated-communication degradation when > 1)")
		epochs     = fs.String("epochs", "", "dynamic-population timeline: ';'-separated epochs of key=value fields (msgs, rounds, join, leave, comp, recover), e.g. 'msgs=2000;msgs=2000,join=10,comp=2'")
		faultSpec  = fs.String("faults", "", "fault plan: comma-separated key=value fields (loss, jitter, crash=node@at[-recover]), e.g. 'loss=0.05,crash=3@100-400'")
		policy     = fs.String("policy", "", "delivery-reliability policy: none | retransmit | reroute (requires -faults)")
		attempts   = fs.Int("attempts", 0, "retry-policy attempt budget (0 = default)")
		seed       = fs.Int64("seed", 1, "random seed")
		noReceiver = fs.Bool("uncompromised-receiver", false, "drop the receiver's report from the adversary's view")
		list       = fs.Bool("strategies", false, "list registered strategy specs")
	)
	if err := fs.Parse(args); err != nil {
		return cliutil.Usage(err)
	}
	if *list {
		for _, e := range pathsel.Specs() {
			fmt.Fprintln(w, e.Usage)
		}
		return nil
	}

	kind, err := scenario.ParseBackend(*backend)
	if err != nil {
		return err
	}
	proto, err := scenario.ParseProtocol(*protocol)
	if err != nil {
		return err
	}
	// An explicitly passed -pf drives the Crowds substrate even when the
	// strategy spec is not a coin-flip family (e.g. -protocol crowds with
	// the default strategy); otherwise the scenario layer recovers pf from
	// a geometric strategy, and refuses a pf-less crowds run. The same
	// explicit-flag tracking resolves -messages against -epochs: a
	// messages-budget timeline replaces the flag's default, but an explicit
	// -messages next to one is a real conflict the scenario layer reports.
	pfSet, messagesSet := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "pf":
			pfSet = true
		case "messages":
			messagesSet = true
		}
	})
	timeline, err := scenario.ParseTimeline(*epochs)
	if err != nil {
		return err
	}
	var plan *faults.Plan
	if *faultSpec != "" {
		if plan, err = faults.ParseFaults(*faultSpec); err != nil {
			return err
		}
	}
	pol, err := faults.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	cfg := scenario.Config{
		N:            *n,
		Backend:      kind,
		StrategySpec: legacySpec(*strategy, *fixedL, *a, *b, *pf),
		Protocol:     proto,
		Adversary:    scenario.Adversary{Count: *c, UncompromisedReceiver: *noReceiver},
		Timeline:     timeline,
		Faults:       plan,
		Reliability:  faults.Reliability{Policy: pol, MaxAttempts: *attempts},
		Workload: scenario.Workload{
			Messages:       *messages,
			Rounds:         *rounds,
			Seed:           *seed,
			BatchThreshold: *batch,
		},
	}
	if pfSet {
		cfg.CrowdsPf = *pf
	}
	if len(timeline) > 0 && !messagesSet {
		for _, e := range timeline {
			if e.Messages > 0 {
				// A messages-budget timeline carries its own traffic; drop
				// the -messages default so the epochs are the single source.
				cfg.Workload.Messages = 0
				break
			}
		}
	}
	res, err := scenario.Run(cfg)
	if err != nil {
		return err
	}
	switch {
	case res.Crowds != nil:
		return printCrowds(w, cfg, res)
	case kind == scenario.BackendTestbed:
		return printTestbed(w, cfg, res)
	default:
		return printAnalytic(w, cfg, res)
	}
}

// legacySpec upgrades the historical bare strategy names to registry
// specs, folding in the legacy parameter flags; full specs pass through.
func legacySpec(strategy string, l, a, b int, pf float64) string {
	if strings.ContainsRune(strategy, ':') {
		return strategy
	}
	switch strings.ToLower(strategy) {
	case "fixed":
		return fmt.Sprintf("fixed:%d", l)
	case "uniform":
		return fmt.Sprintf("uniform:%d,%d", a, b)
	case "crowds":
		return fmt.Sprintf("crowds:%g", pf)
	default:
		return strategy
	}
}

// printReliability renders the delivery statistics of a fault-injected
// run: the delivery rate, the mean attempts the policy spent per message,
// and the retry-degraded anonymity degree next to the lossless one.
func printReliability(w io.Writer, cfg scenario.Config, res scenario.Result) {
	if cfg.Faults == nil {
		return
	}
	fmt.Fprintf(w, "\nFault plan %s, policy %s:\n", cfg.Faults, cfg.Reliability.Policy)
	fmt.Fprintf(w, "Delivery rate              = %.4f (%.2f attempts/message)\n",
		res.DeliveryRate, res.MeanAttempts)
	fmt.Fprintf(w, "Retry-degraded H*(S)       = %.4f bits (retry-anonymity cost %.4f)\n",
		res.HDegraded, res.H-res.HDegraded)
}

// printEpochs renders the per-epoch population trajectory and entropy of a
// dynamic-population run.
func printEpochs(w io.Writer, res scenario.Result) {
	if len(res.Epochs) == 0 {
		return
	}
	fmt.Fprintf(w, "\nDynamic population (%d epochs):\n", len(res.Epochs))
	fmt.Fprintf(w, "%6s %8s %6s %9s %7s %12s\n", "epoch", "N", "C", "traffic", "rounds", "H (bits)")
	for _, e := range res.Epochs {
		fmt.Fprintf(w, "%6d %8d %6d %9d %7d %12.4f\n", e.Index, e.N, e.C, e.Messages, e.Rounds, e.H)
	}
}

// printDegradation renders the multi-round degradation curve H_1..H_k and
// the identification statistics of a repeated-communication run.
func printDegradation(w io.Writer, res scenario.Result) {
	if res.Rounds <= 1 || len(res.HRounds) == 0 {
		return
	}
	fmt.Fprintf(w, "\nDegradation over %d rounds (%d sessions):\n", res.Rounds, res.Trials)
	fmt.Fprintf(w, "%8s %14s\n", "round k", "H_k (bits)")
	for k, h := range res.HRounds {
		fmt.Fprintf(w, "%8d %14.4f\n", k+1, h)
	}
	if res.IdentifiedShare > 0 {
		fmt.Fprintf(w, "Sessions identified: %.1f%% (mean round %.1f)\n",
			100*res.IdentifiedShare, res.MeanRoundsToIdentify)
	}
}

// exactReference computes the exact single-shot H*(S) for the scenario's
// strategy — the static closed form, or the timeline's exact mixture (the
// shared engine makes either nearly free). It returns NaN when the exact
// backend cannot express the scenario, and for degradation timelines,
// whose per-epoch Rounds would make the "reference" a sampled
// accumulation horizon rather than a single-shot value (the epoch table
// carries the per-phase information instead).
func exactReference(cfg scenario.Config) float64 {
	for _, e := range cfg.Timeline {
		if e.Rounds > 0 {
			return math.NaN()
		}
	}
	ref := cfg
	ref.Backend = scenario.BackendExact
	ref.Protocol = scenario.ProtocolPlain
	ref.Workload.Rounds = 1
	ref.Workload.Confidence = 0
	res, err := scenario.Run(ref)
	if err != nil {
		return math.NaN()
	}
	return res.H
}

// printTestbed renders a routed testbed run next to the exact engine.
func printTestbed(w io.Writer, cfg scenario.Config, res scenario.Result) error {
	msgs := res.Trials * res.Rounds
	fmt.Fprintf(w, "Testbed: N=%d, C=%d, strategy %s, %d messages\n",
		cfg.N, cfg.Adversary.Count, res.Strategy, msgs)
	fmt.Fprintf(w, "Protocol: %s\n", cfg.Protocol)
	fmt.Fprintf(w, "Delivered %d messages in %v (%.0f msg/s)\n",
		msgs, res.Elapsed.Round(time.Millisecond),
		float64(msgs)/res.Elapsed.Seconds())
	if k := res.Kernel; k != nil {
		fmt.Fprintf(w, "Kernel: %d shards, %d events (%.0f events/s), +%d goroutines\n",
			k.Shards, k.Events, k.EventsPerSec, k.Goroutines)
	}
	fmt.Fprintf(w, "\nEmpirical anonymity degree = %.4f ± %.4f bits (95%% CI)\n", res.H, res.CI95)
	exact := exactReference(cfg)
	if !math.IsNaN(exact) {
		fmt.Fprintf(w, "Exact engine H*(S)         = %.4f bits\n", exact)
	}
	fmt.Fprintf(w, "Maximum log2(N)            = %.4f bits\n", res.MaxH)
	fmt.Fprintf(w, "Messages fully deanonymized: %d (%.1f%%)\n",
		res.Deanonymized, 100*float64(res.Deanonymized)/float64(res.Trials))
	printReliability(w, cfg, res)
	printEpochs(w, res)
	if res.Rounds <= 1 && !math.IsNaN(exact) {
		if d := math.Abs(res.H - exact); d <= 4*res.StdErr+1e-3 {
			fmt.Fprintf(w, "Agreement: |empirical - exact| = %.5f (within 4σ) ✓\n", d)
		} else {
			fmt.Fprintf(w, "Agreement: |empirical - exact| = %.5f (OUTSIDE 4σ) ✗\n", d)
		}
	}
	printDegradation(w, res)
	return nil
}

// printCrowds renders the jondo-protocol run: the Reiter–Rubin
// predecessor statistics.
func printCrowds(w io.Writer, cfg scenario.Config, res scenario.Result) error {
	cr := res.Crowds
	msgs := res.Trials * res.Rounds
	fmt.Fprintf(w, "Crowds testbed: N=%d, C=%d, pf=%.2f, %d messages from honest jondos\n",
		cfg.N, cfg.Adversary.Count, cr.Pf, msgs)
	if k := res.Kernel; k != nil {
		fmt.Fprintf(w, "Kernel: %d shards, %d events (%.0f events/s)\n",
			k.Shards, k.Events, k.EventsPerSec)
	}
	fmt.Fprintf(w, "Paths observed by a collaborator: %d of %d\n", cr.Observed, msgs)
	if cr.Observed > 0 {
		fmt.Fprintf(w, "Empirical P(pred = initiator | observed) = %.4f\n",
			float64(cr.Hits)/float64(cr.Observed))
	}
	fmt.Fprintf(w, "Reiter–Rubin closed form                 = %.4f\n", cr.PredecessorProb)
	fmt.Fprintf(w, "Posterior entropy of that event          = %.4f bits\n", cr.EventEntropy)
	fmt.Fprintf(w, "Probable innocence: %v\n", cr.ProbableInnocence)
	if res.Rounds > 1 {
		fmt.Fprintf(w, "Initiators with top predecessor count: %.1f%% of %d sessions (%.1f observed rounds/session)\n",
			100*cr.TopCountIdentifiedShare, res.Trials, cr.MeanObservedRounds)
	}
	printDegradation(w, res)
	return nil
}

// printAnalytic renders exact and Monte-Carlo results.
func printAnalytic(w io.Writer, cfg scenario.Config, res scenario.Result) error {
	fmt.Fprintf(w, "Backend %s: N=%d, C=%d, strategy %s\n",
		res.Backend, cfg.N, cfg.Adversary.Count, res.Strategy)
	if res.Estimated {
		fmt.Fprintf(w, "Estimated H*(S) = %.4f ± %.4f bits (95%% CI, %d trials)\n",
			res.H, res.CI95, res.Trials)
		if res.Rounds <= 1 {
			exact := exactReference(cfg)
			if !math.IsNaN(exact) {
				fmt.Fprintf(w, "Exact engine H*(S)         = %.4f bits\n", exact)
			}
		}
	} else {
		fmt.Fprintf(w, "Exact H*(S)     = %.6f bits\n", res.H)
	}
	fmt.Fprintf(w, "Maximum log2(N) = %.4f bits (normalized %.2f%%)\n", res.MaxH, 100*res.Normalized)
	printReliability(w, cfg, res)
	printEpochs(w, res)
	printDegradation(w, res)
	return nil
}
