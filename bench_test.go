package anonmix

// One benchmark per figure and theorem of the paper's evaluation section,
// plus ablation and raw-performance benches. Figure benches regenerate the
// full data series each iteration and report headline metrics (peak
// locations, anonymity-degree gaps) via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as the reproduction harness.
// EXPERIMENTS.md records the paper-vs-measured comparison.

import (
	"crypto/rand"
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"anonmix/internal/adversary"
	"anonmix/internal/degrade"
	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/faults"
	"anonmix/internal/figures"
	"anonmix/internal/mixbatch"
	"anonmix/internal/montecarlo"
	"anonmix/internal/onion"
	"anonmix/internal/optimize"
	"anonmix/internal/pathsel"
	"anonmix/internal/scenario"
	"anonmix/internal/simnet"
	"anonmix/internal/stats"
	"anonmix/internal/theory"
	"anonmix/internal/trace"
)

// benchFigure runs a figure generator and reports series count.
func benchFigure(b *testing.B, gen func() (figures.Figure, error)) figures.Figure {
	b.Helper()
	var fig figures.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = gen()
		if err != nil {
			b.Fatal(err)
		}
	}
	return fig
}

// BenchmarkFig3a regenerates Figure 3(a) — H* vs fixed path length,
// N=100, C=1 — and reports the long-path-effect peak.
func BenchmarkFig3a(b *testing.B) {
	fig := benchFigure(b, figures.Fig3a)
	x, y, err := fig.Peak("F(l)")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(x, "peak_l")
	b.ReportMetric(y, "peak_H*_bits")
}

// BenchmarkFig3b regenerates Figure 3(b) — the short-path zoom — and
// reports the l=1 plateau value (paper: ≈6.482).
func BenchmarkFig3b(b *testing.B) {
	fig := benchFigure(b, figures.Fig3b)
	b.ReportMetric(fig.Series[0].Y[1], "H*_at_l1_bits")
	b.ReportMetric(fig.Series[0].Y[4], "H*_at_l4_bits")
}

// BenchmarkFig4a..d regenerate the four panels of Figure 4 (H* vs
// expectation at equal variance).
func BenchmarkFig4a(b *testing.B) {
	fig := benchFigure(b, figures.Fig4a)
	_, y, err := fig.Peak("U(4,4+L)")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(y, "peak_H*_bits")
}

func BenchmarkFig4b(b *testing.B) { benchFigure(b, figures.Fig4b) }
func BenchmarkFig4c(b *testing.B) { benchFigure(b, figures.Fig4c) }

func BenchmarkFig4d(b *testing.B) {
	fig := benchFigure(b, figures.Fig4d)
	// The U(0,L) curve recovers from the short-path effect at large L.
	s := fig.Series[0]
	b.ReportMetric(s.Y[len(s.Y)-1]-s.Y[0], "U0_recovery_bits")
}

// BenchmarkFig5a..d regenerate the four panels of Figure 5 (H* vs variance
// at equal expectation). Panel (a) reports the maximum deviation of the
// a ≥ 3 uniform curves from F(L) — Theorem 3 says it should be ~0.
func BenchmarkFig5a(b *testing.B) {
	fig := benchFigure(b, figures.Fig5a)
	ref := map[float64]float64{}
	for i, x := range fig.Series[0].X {
		ref[x] = fig.Series[0].Y[i]
	}
	var maxDev float64
	for _, s := range fig.Series[1:] {
		for i, x := range s.X {
			if want, ok := ref[x]; ok {
				if d := math.Abs(s.Y[i] - want); d > maxDev {
					maxDev = d
				}
			}
		}
	}
	b.ReportMetric(maxDev, "overlay_max_dev_bits")
}

func BenchmarkFig5b(b *testing.B) { benchFigure(b, figures.Fig5b) }
func BenchmarkFig5c(b *testing.B) { benchFigure(b, figures.Fig5c) }

func BenchmarkFig5d(b *testing.B) {
	fig := benchFigure(b, figures.Fig5d)
	// Inequality (18) gap at L=20: U(1,2L−1) over F(L).
	var u1, f float64
	for _, s := range fig.Series {
		for i, x := range s.X {
			if x != 20 {
				continue
			}
			switch s.Label {
			case "U(1,2L-1)":
				u1 = s.Y[i]
			case "F(L)":
				f = s.Y[i]
			}
		}
	}
	b.ReportMetric(u1-f, "ineq18_gap_bits")
}

// BenchmarkFig6 regenerates Figure 6 — the optimal distribution versus
// F(L) and U(2,2L−2) — and reports the optimization gain at the largest
// mean.
func BenchmarkFig6(b *testing.B) {
	fig := benchFigure(b, func() (figures.Figure, error) { return figures.Fig6(12) })
	series := map[string][]float64{}
	for _, s := range fig.Series {
		series[s.Label] = s.Y
	}
	last := len(series["F(L)"]) - 1
	b.ReportMetric(series["Optimization"][last]-series["F(L)"][last], "opt_gain_bits")
}

// BenchmarkTheorem1 sweeps the Theorem-1 closed form against the engine
// and reports the maximum disagreement (should be ≈0).
func BenchmarkTheorem1(b *testing.B) {
	e, err := events.New(100, 1)
	if err != nil {
		b.Fatal(err)
	}
	var maxDev float64
	for i := 0; i < b.N; i++ {
		maxDev = 0
		for l := 0; l <= 99; l++ {
			f, err := dist.NewFixed(l)
			if err != nil {
				b.Fatal(err)
			}
			got, err := e.AnonymityDegree(f)
			if err != nil {
				b.Fatal(err)
			}
			want, err := theory.FixedSimpleC1(100, l)
			if err != nil {
				b.Fatal(err)
			}
			if d := math.Abs(got - want); d > maxDev {
				maxDev = d
			}
		}
	}
	b.ReportMetric(maxDev, "max_dev_bits")
}

// BenchmarkTheorem2 sweeps the geometric (coin-flip, Formula 12) closed
// form against the engine over forwarding probabilities.
func BenchmarkTheorem2(b *testing.B) {
	e, err := events.New(100, 1)
	if err != nil {
		b.Fatal(err)
	}
	var maxDev float64
	for i := 0; i < b.N; i++ {
		maxDev = 0
		for _, pf := range []float64{0.1, 0.25, 0.5, 0.66, 0.75, 0.9, 0.99} {
			g, err := dist.NewGeometric(pf, 1, 99)
			if err != nil {
				b.Fatal(err)
			}
			got, err := e.AnonymityDegree(g)
			if err != nil {
				b.Fatal(err)
			}
			want, err := theory.GeometricC1(100, pf, 1, 99)
			if err != nil {
				b.Fatal(err)
			}
			if d := math.Abs(got - want); d > maxDev {
				maxDev = d
			}
		}
	}
	b.ReportMetric(maxDev, "max_dev_bits")
}

// BenchmarkTheorem3 verifies the mean-only property of uniform strategies
// with lower bound ≥ 3 across the support and reports the worst deviation.
func BenchmarkTheorem3(b *testing.B) {
	e, err := events.New(100, 1)
	if err != nil {
		b.Fatal(err)
	}
	var maxDev float64
	for i := 0; i < b.N; i++ {
		maxDev = 0
		for mean := 5; mean <= 45; mean += 5 {
			want, err := theory.MeanOnlyC1(100, float64(mean))
			if err != nil {
				b.Fatal(err)
			}
			for a := 3; a <= mean; a += 4 {
				u, err := dist.NewUniform(a, 2*mean-a)
				if err != nil {
					b.Fatal(err)
				}
				got, err := e.AnonymityDegree(u)
				if err != nil {
					b.Fatal(err)
				}
				if d := math.Abs(got - want); d > maxDev {
					maxDev = d
				}
			}
		}
	}
	b.ReportMetric(maxDev, "max_dev_bits")
}

// BenchmarkSystemsSurvey evaluates the §2 system presets exactly and
// reports the spread between the best and worst surveyed strategy.
func BenchmarkSystemsSurvey(b *testing.B) {
	e, err := events.New(100, 1)
	if err != nil {
		b.Fatal(err)
	}
	remailer, err := pathsel.Remailer(4)
	if err != nil {
		b.Fatal(err)
	}
	strats := []pathsel.Strategy{
		pathsel.Anonymizer(), pathsel.LPWA(), pathsel.Freedom(),
		pathsel.PipeNet(), pathsel.OnionRoutingI(), remailer,
	}
	var best, worst float64
	for i := 0; i < b.N; i++ {
		best, worst = math.Inf(-1), math.Inf(1)
		for _, s := range strats {
			h, err := e.AnonymityDegree(s.Length)
			if err != nil {
				b.Fatal(err)
			}
			if h > best {
				best = h
			}
			if h < worst {
				worst = h
			}
		}
	}
	b.ReportMetric(best-worst, "survey_spread_bits")
}

// BenchmarkTestbedAgreement runs the goroutine testbed end to end and
// reports |empirical − exact| for the anonymity degree.
func BenchmarkTestbedAgreement(b *testing.B) {
	const n, trials = 14, 1500
	compromised := []trace.NodeID{2, 7, 11}
	u, err := dist.NewUniform(0, 6)
	if err != nil {
		b.Fatal(err)
	}
	strat := pathsel.Strategy{Name: "U(0,6)", Length: u, Kind: pathsel.Simple}
	engine, err := events.New(n, len(compromised))
	if err != nil {
		b.Fatal(err)
	}
	exact, err := engine.AnonymityDegree(u)
	if err != nil {
		b.Fatal(err)
	}
	analyst, err := adversary.NewAnalyst(engine, u, compromised)
	if err != nil {
		b.Fatal(err)
	}
	sel, err := pathsel.NewSelector(n, strat)
	if err != nil {
		b.Fatal(err)
	}
	var delta float64
	for i := 0; i < b.N; i++ {
		nw, err := simnet.New(simnet.Config{N: n, Compromised: compromised})
		if err != nil {
			b.Fatal(err)
		}
		nw.Start()
		rng := stats.NewRand(int64(i) + 1)
		senders := make(map[trace.MessageID]trace.NodeID, trials)
		for t := 0; t < trials; t++ {
			sender := trace.NodeID(rng.Intn(n))
			path, err := sel.SelectPath(rng, sender)
			if err != nil {
				b.Fatal(err)
			}
			id, err := nw.SendRoute(sender, path, nil)
			if err != nil {
				b.Fatal(err)
			}
			senders[id] = sender
		}
		if err := nw.WaitSettled(time.Minute); err != nil {
			b.Fatal(err)
		}
		var sum stats.Summary
		for id, mt := range trace.Collate(nw.Tuples()) {
			if analyst.Compromised(senders[id]) {
				sum.Add(0)
				continue
			}
			post, err := analyst.Posterior(mt)
			if err != nil {
				b.Fatal(err)
			}
			sum.Add(post.H)
		}
		nw.Close()
		delta = math.Abs(sum.Mean() - exact)
	}
	b.ReportMetric(delta, "emp_vs_exact_bits")
	b.ReportMetric(float64(trials), "messages")
}

// BenchmarkAblationInference compares the fixed-length peak location under
// the standard adversary and the full-position oracle (DESIGN.md §2).
func BenchmarkAblationInference(b *testing.B) {
	peak := func(mode events.InferenceMode) (int, float64) {
		e, err := events.New(100, 1, events.WithInference(mode))
		if err != nil {
			b.Fatal(err)
		}
		bestL, bestH := 0, math.Inf(-1)
		for l := 1; l <= 99; l++ {
			f, err := dist.NewFixed(l)
			if err != nil {
				b.Fatal(err)
			}
			h, err := e.AnonymityDegree(f)
			if err != nil {
				b.Fatal(err)
			}
			if h > bestH {
				bestH, bestL = h, l
			}
		}
		return bestL, bestH
	}
	var stdL, posL int
	for i := 0; i < b.N; i++ {
		stdL, _ = peak(events.InferenceStandard)
		posL, _ = peak(events.InferenceFullPosition)
	}
	b.ReportMetric(float64(stdL), "peak_standard_l")
	b.ReportMetric(float64(posL), "peak_fullposition_l")
}

// BenchmarkAblationCompromiseSweep reports how the anonymity degree of the
// Onion Routing I strategy decays as the number of compromised nodes grows.
func BenchmarkAblationCompromiseSweep(b *testing.B) {
	var h1, h8 float64
	for i := 0; i < b.N; i++ {
		for _, c := range []int{1, 2, 4, 8} {
			e, err := events.New(100, c)
			if err != nil {
				b.Fatal(err)
			}
			h, err := e.AnonymityDegree(pathsel.OnionRoutingI().Length)
			if err != nil {
				b.Fatal(err)
			}
			switch c {
			case 1:
				h1 = h
			case 8:
				h8 = h
			}
		}
	}
	b.ReportMetric(h1-h8, "decay_c1_to_c8_bits")
}

// BenchmarkAblationLargeC regenerates the large-C figure (anonymity vs
// compromised fraction at N ∈ {100, 1000}) and reports the normalized
// anonymity remaining at 50% corruption of the large system.
func BenchmarkAblationLargeC(b *testing.B) {
	fig := benchFigure(b, figures.AblationLargeC)
	s := fig.Series[len(fig.Series)-1]
	b.ReportMetric(s.Y[len(s.Y)-1], "norm_H*_at_half_N1000")
}

// BenchmarkDegreeLargeC measures one cold exact evaluation far beyond the
// old enumeration cap: N = 1000, C = 400 (40% corruption), U(2,20). A
// fresh engine per iteration keeps the memo out of the measurement.
func BenchmarkDegreeLargeC(b *testing.B) {
	u, err := dist.NewUniform(2, 20)
	if err != nil {
		b.Fatal(err)
	}
	var h float64
	for i := 0; i < b.N; i++ {
		e, err := events.New(1000, 400)
		if err != nil {
			b.Fatal(err)
		}
		if h, err = e.AnonymityDegree(u); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h, "H*_bits")
}

// BenchmarkWeightsLargeC measures building the optimizer's bucketed weight
// decomposition at N = 1000, C = 400 over the U(2,20) support range.
func BenchmarkWeightsLargeC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := events.New(1000, 400)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Weights(0, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDegreeEnumerated times the legacy Θ(3^C) per-class path
// (ClassStats fold) at the top of its range, for the EXPERIMENTS.md
// enumerated-vs-bucketed comparison.
func BenchmarkDegreeEnumerated(b *testing.B) {
	u, err := dist.NewUniform(2, 20)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []int{8, 10, 12} {
		b.Run(fmt.Sprintf("C=%d", c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := events.New(100, c)
				if err != nil {
					b.Fatal(err)
				}
				stats, err := e.ClassStats(u)
				if err != nil {
					b.Fatal(err)
				}
				var h float64
				for _, st := range stats {
					h += st.P * st.H
				}
				_ = h * float64(100-c) / 100
			}
		})
	}
}

// BenchmarkDegreeBucketed times the counted-bucket path over the same
// configurations plus the C = 32/64 regime only it can reach.
func BenchmarkDegreeBucketed(b *testing.B) {
	u, err := dist.NewUniform(2, 20)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []int{8, 10, 12, 32, 64} {
		b.Run(fmt.Sprintf("C=%d", c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := events.New(100, c)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := e.AnonymityDegree(u); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineEval measures a single exact H*(S) evaluation (N=100,
// C=1, full-support uniform) — the optimizer's inner-loop cost.
func BenchmarkEngineEval(b *testing.B) {
	e, err := events.New(100, 1)
	if err != nil {
		b.Fatal(err)
	}
	u, err := dist.NewUniform(0, 99)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.AnonymityDegree(u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineEvalC8 measures the exact engine with a large class space
// (C=8: ~9.8k observation classes).
func BenchmarkEngineEvalC8(b *testing.B) {
	e, err := events.New(100, 8)
	if err != nil {
		b.Fatal(err)
	}
	u, err := dist.NewUniform(0, 99)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.AnonymityDegree(u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeights measures building the per-class weight vectors the
// optimizer consumes (N=100, C=8: ~9.8k observation classes over the full
// length range).
func BenchmarkWeights(b *testing.B) {
	e, err := events.New(100, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Weights(0, 99); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizer measures a full mean-constrained Maximize solve.
func BenchmarkOptimizer(b *testing.B) {
	e, err := events.New(100, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := optimize.Maximize(optimize.Problem{
			Engine: e, Lo: 0, Hi: 99, Mean: 10,
		}, optimize.WithMaxIterations(150)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarlo measures the sampling estimator's throughput.
func BenchmarkMonteCarlo(b *testing.B) {
	strat, err := pathsel.UniformLength(0, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := montecarlo.EstimateH(montecarlo.Config{
			N: 50, Compromised: []trace.NodeID{3, 11, 29}, Strategy: strat,
			Trials: 10000, Seed: int64(i), Workers: 4,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(10000, "trials/op")
}

// BenchmarkTestbedThroughput measures raw goroutine-testbed message
// throughput with 5-hop routes.
func BenchmarkTestbedThroughput(b *testing.B) {
	nw, err := simnet.New(simnet.Config{N: 64, Compromised: []trace.NodeID{1, 2}, Buffer: 4096})
	if err != nil {
		b.Fatal(err)
	}
	nw.Start()
	defer nw.Close()
	route := []trace.NodeID{5, 9, 13, 17, 21}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.SendRoute(0, route, nil); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			if err := nw.WaitSettled(time.Minute); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := nw.WaitSettled(time.Minute); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkOnionBuildPeel measures building and fully peeling a 5-layer
// onion.
func BenchmarkOnionBuildPeel(b *testing.B) {
	kr, err := onion.NewKeyRing([]byte("bench ring"), 32)
	if err != nil {
		b.Fatal(err)
	}
	route := []trace.NodeID{3, 7, 11, 19, 23}
	payload := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := onion.Build(kr, route, payload, rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		for _, hop := range route {
			_, blob, err = onion.Peel(kr, hop, blob)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDegradation measures the repeated-communication experiment:
// Bayesian accumulation until 90%-confidence identification, reporting the
// mean number of messages the sender survives.
func BenchmarkDegradation(b *testing.B) {
	strat, err := pathsel.UniformLength(1, 7)
	if err != nil {
		b.Fatal(err)
	}
	var rounds float64
	for i := 0; i < b.N; i++ {
		res, err := degrade.Run(degrade.Config{
			N: 20, Compromised: []trace.NodeID{3, 11}, Strategy: strat,
			Sender: 7, Confidence: 0.9, MaxRounds: 200, Trials: 20, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.MeanRounds
	}
	b.ReportMetric(rounds, "mean_rounds_to_id")
}

// BenchmarkDegradationRounds measures the scenario layer's multi-round
// degradation path (Workload.Rounds) on the Monte-Carlo backend — the hot
// path behind the degradation figure and the degrade façade — and reports
// the first- and final-round anonymity of the curve.
func BenchmarkDegradationRounds(b *testing.B) {
	cfg := scenario.Config{
		N:            50,
		Backend:      scenario.BackendMonteCarlo,
		StrategySpec: "uniform:1,7",
		Adversary:    scenario.Adversary{Count: 3},
		Workload:     scenario.Workload{Messages: 1500, Rounds: 16, Seed: 1, Workers: 4},
	}
	// Warm the engine caches so the allocation budget below measures the
	// steady-state sampling loop, not first-run memoization.
	if _, err := scenario.Run(cfg); err != nil {
		b.Fatal(err)
	}
	var h1, hk float64
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		h1, hk = res.HRounds[0], res.HRounds[15]
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	allocsPerOp := float64(after.Mallocs-before.Mallocs) / float64(b.N)
	b.ReportMetric(allocsPerOp, "trial_allocs/op")
	// The pre-arena hot loop spent ~366k allocations per op; the zero-
	// allocation fast path must stay two orders of magnitude below that.
	if allocsPerOp > 3660 {
		b.Fatalf("sampling fast path regressed: %.0f allocs/op, budget 3660 (seed baseline ~366000)", allocsPerOp)
	}
	b.ReportMetric(h1, "H1_bits")
	b.ReportMetric(hk, "H16_bits")
	b.ReportMetric(h1-hk, "decay_bits")
}

// BenchmarkMCTrialsPerSecond is the headline sampling-throughput number:
// one op estimates single-shot anonymity from 5000 Monte-Carlo trials, and
// the metric reports raw trials per second through the arena fast path.
func BenchmarkMCTrialsPerSecond(b *testing.B) {
	const trials = 5000
	strat, err := pathsel.UniformLength(1, 7)
	if err != nil {
		b.Fatal(err)
	}
	cfg := montecarlo.Config{
		N:           50,
		Compromised: []trace.NodeID{3, 11, 27},
		Strategy:    strat,
		Trials:      trials,
		Seed:        1,
		Workers:     4,
	}
	if _, err := montecarlo.EstimateH(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var h float64
	for i := 0; i < b.N; i++ {
		res, err := montecarlo.EstimateH(cfg)
		if err != nil {
			b.Fatal(err)
		}
		h = res.H
	}
	b.ReportMetric(float64(b.N)*trials/b.Elapsed().Seconds(), "trials/s")
	b.ReportMetric(h, "H_bits")
}

// BenchmarkChurnSweep measures the dynamic-population figure: three
// canonical churn timelines (grow, shrink, creeping compromise) on the
// Monte-Carlo backend, phased sessions accumulating across epoch
// boundaries through the union-space accumulator. The reported metrics are
// the horizon anonymity of the growth and creep dynamics — the spread
// between them is the cost of a time-phased adversary.
func BenchmarkChurnSweep(b *testing.B) {
	var growEnd, creepEnd float64
	for i := 0; i < b.N; i++ {
		fig, err := figures.ChurnSweep(30, 3, 400, 1, 4, []string{"uniform:1,7"})
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range fig.Series {
			switch s.Label {
			case "uniform:1,7/grow":
				growEnd = s.Y[len(s.Y)-1]
			case "uniform:1,7/creep":
				creepEnd = s.Y[len(s.Y)-1]
			}
		}
	}
	b.ReportMetric(growEnd, "grow_H12_bits")
	b.ReportMetric(creepEnd, "creep_H12_bits")
	b.ReportMetric(growEnd-creepEnd, "creep_cost_bits")
}

// BenchmarkCrowdsDegradation measures the predecessor-counting attack
// across path reformations.
func BenchmarkCrowdsDegradation(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		res, err := degrade.CrowdsDegradation(30, 3, 0.75, 100, 200, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		share = res.IdentifiedShare
	}
	b.ReportMetric(share, "identified_share_100r")
}

// BenchmarkPoolMixLinkage measures the pool-mix departure-round entropy
// simulation.
func BenchmarkPoolMixLinkage(b *testing.B) {
	var h float64
	for i := 0; i < b.N; i++ {
		res, err := mixbatch.SimulatePoolLinkage(8, 4, 100, 20, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		h = res.DepartureRoundEntropy
	}
	b.ReportMetric(h, "departure_entropy_bits")
}

// BenchmarkPosterior measures one adversary inference (classification +
// Bayes + posterior construction).
func BenchmarkPosterior(b *testing.B) {
	engine, err := events.New(100, 3)
	if err != nil {
		b.Fatal(err)
	}
	u, err := dist.NewUniform(0, 20)
	if err != nil {
		b.Fatal(err)
	}
	compromised := []trace.NodeID{10, 20, 30}
	analyst, err := adversary.NewAnalyst(engine, u, compromised)
	if err != nil {
		b.Fatal(err)
	}
	path := []trace.NodeID{4, 10, 55, 20, 30, 61, 77}
	mt := montecarlo.Synthesize(1, 9, path, analyst.Compromised)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analyst.Posterior(mt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioMillionNodes drives the full scenario stack — sharded
// event kernel, sparse path selection, O(1)-per-message adversarial
// analysis — at N = 1,000,000 nodes with 1,000 messages per iteration,
// and reports kernel throughput.
func BenchmarkScenarioMillionNodes(b *testing.B) {
	var events, perSec float64
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(scenario.Config{
			N:            1_000_000,
			Backend:      scenario.BackendTestbed,
			StrategySpec: "uniform:1,7",
			Adversary:    scenario.Adversary{Count: 1000},
			Workload:     scenario.Workload{Messages: 1000, Seed: int64(i) + 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		events = float64(res.Kernel.Events)
		perSec = res.Kernel.EventsPerSec
	}
	b.ReportMetric(events, "events/op")
	b.ReportMetric(perSec, "events/s")
}

// BenchmarkTimelineExactDelta pits the delta engine path against fresh
// construction on a timeline-scale workload: a 32-epoch population drift
// at N ≈ 10^5 with C = 0.4N, evaluating U(2,20) exactly at every epoch.
// The delta chain derives each epoch's engine from its predecessor
// (events.Engine.Neighbor), sharing one family of shape tables across the
// whole timeline; the fresh path rebuilds the engine per epoch, the way
// every caller had to before the delta path existed. Both are timed
// inside the iteration and reported per epoch, plus the headline ratio
// (the acceptance gate wants ≥ 5x).
func BenchmarkTimelineExactDelta(b *testing.B) {
	const (
		baseN  = 100_000
		baseC  = 40_000
		epochs = 32
	)
	u, err := dist.NewUniform(2, 20)
	if err != nil {
		b.Fatal(err)
	}
	base, err := events.New(baseN, baseC)
	if err != nil {
		b.Fatal(err)
	}
	step := func(k int) (int, int) { // dn, dc for epoch k: N drifts up, C every 4th
		if k%4 == 3 {
			return 1, 1
		}
		return 1, 0
	}
	var freshNS, deltaNS float64
	var hDelta, hFresh float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		e := base
		for k := 0; k < epochs; k++ {
			dn, dc := step(k)
			if e, err = e.Neighbor(dn, dc); err != nil {
				b.Fatal(err)
			}
			if hDelta, err = e.AnonymityDegree(u); err != nil {
				b.Fatal(err)
			}
		}
		deltaNS = float64(time.Since(start).Nanoseconds()) / epochs

		start = time.Now()
		n, c := baseN, baseC
		for k := 0; k < epochs; k++ {
			dn, dc := step(k)
			n, c = n+dn, c+dc
			f, err := events.New(n, c)
			if err != nil {
				b.Fatal(err)
			}
			if hFresh, err = f.AnonymityDegree(u); err != nil {
				b.Fatal(err)
			}
		}
		freshNS = float64(time.Since(start).Nanoseconds()) / epochs
	}
	if math.Abs(hDelta-hFresh) > 1e-12 {
		b.Fatalf("final epoch disagrees: delta %v, fresh %v", hDelta, hFresh)
	}
	b.ReportMetric(freshNS, "fresh_ns/epoch")
	b.ReportMetric(deltaNS, "delta_ns/epoch")
	b.ReportMetric(freshNS/deltaNS, "speedup_x")
}

// BenchmarkMaximizeTimeline measures the epoch-aware solver on a
// mean-constrained 9-epoch drift: full restarts on the first epoch, warm
// starts after, then the joint blended solve. Reports the blended
// anonymity of both policies and the total ascent iterations, the
// quantity warm-starting exists to shrink.
func BenchmarkMaximizeTimeline(b *testing.B) {
	base, err := events.New(60, 2)
	if err != nil {
		b.Fatal(err)
	}
	p := optimize.TimelineProblem{Lo: 0, Hi: 30, Mean: 12}
	e := base
	for k := 0; ; k++ {
		p.Epochs = append(p.Epochs, optimize.EpochProblem{Engine: e, Weight: 1})
		if k == 8 {
			break
		}
		dc := 0
		if k%3 == 2 {
			dc = 1
		}
		if e, err = e.Neighbor(1, dc); err != nil {
			b.Fatal(err)
		}
	}
	var res optimize.TimelineResult
	for i := 0; i < b.N; i++ {
		if res, err = optimize.MaximizeTimeline(p, optimize.WithMaxIterations(150)); err != nil {
			b.Fatal(err)
		}
	}
	var iters int
	for _, r := range res.PerEpoch {
		iters += r.Iterations
	}
	b.ReportMetric(float64(iters), "perepoch_iters")
	b.ReportMetric(res.PerEpochH, "perepoch_H_bits")
	b.ReportMetric(res.Joint.H, "joint_H_bits")
}

// BenchmarkScenarioBackends runs one small scenario on each backend.
func BenchmarkScenarioBackends(b *testing.B) {
	for _, kind := range []scenario.BackendKind{
		scenario.BackendExact, scenario.BackendMonteCarlo, scenario.BackendTestbed,
	} {
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := scenario.Run(scenario.Config{
					N:            100,
					Backend:      kind,
					StrategySpec: "uniform:0,10",
					Adversary:    scenario.Adversary{Count: 3},
					Workload:     scenario.Workload{Messages: 2000, Seed: 1, Workers: 4},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReliabilitySweep regenerates the reliability figure — the
// testbed kernel across loss rates × delivery policies with retry-leak
// analysis per point — and reports the headline trade-off at the highest
// loss rate: reroute's delivery next to its retry-anonymity cost.
func BenchmarkReliabilitySweep(b *testing.B) {
	var delivery, cost float64
	for i := 0; i < b.N; i++ {
		fig, err := figures.ReliabilitySweep(20, 3, 1000, 1, []float64{0, 0.05, 0.2}, []string{"uniform:1,5"})
		if err != nil {
			b.Fatal(err)
		}
		series := map[string][]float64{}
		for _, s := range fig.Series {
			series[s.Label] = s.Y
		}
		h := series["uniform:1,5/reroute/H"]
		hd := series["uniform:1,5/reroute/Hdeg"]
		d := series["uniform:1,5/reroute/delivery"]
		last := len(d) - 1
		delivery, cost = d[last], h[last]-hd[last]
	}
	b.ReportMetric(delivery, "reroute_delivery_q20")
	b.ReportMetric(cost, "retry_cost_bits_q20")
}

// BenchmarkLossyChurnMillion drives the fault-injection layer at scale: a
// two-epoch churn timeline (a thousand joins, a hundred fresh
// compromises) over N = 1,000,000 nodes with 5% link loss, a mid-run
// crash outage, and the retransmit policy — the sharded kernel, the loss
// process, the retry-observation analysis, and the union-space churn
// accounting all in one run. Reports kernel throughput and the measured
// delivery rate.
func BenchmarkLossyChurnMillion(b *testing.B) {
	timeline, err := scenario.ParseTimeline("msgs=500;msgs=500,join=1000,comp=100")
	if err != nil {
		b.Fatal(err)
	}
	var perSec, delivery, attempts float64
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(scenario.Config{
			N:            1_000_000,
			Backend:      scenario.BackendTestbed,
			StrategySpec: "uniform:1,7",
			Adversary:    scenario.Adversary{Count: 1000},
			Timeline:     timeline,
			Faults: &faults.Plan{
				LinkLoss: 0.05,
				Crashes:  []faults.Crash{{Node: 1234, At: 50, Recover: 500}},
			},
			Reliability: faults.Reliability{Policy: faults.PolicyRetransmit},
			Workload:    scenario.Workload{Seed: int64(i) + 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		perSec = res.Kernel.EventsPerSec
		delivery = res.DeliveryRate
		attempts = res.MeanAttempts
	}
	b.ReportMetric(perSec, "events/s")
	b.ReportMetric(delivery, "delivery_rate")
	b.ReportMetric(attempts, "attempts/msg")
}
