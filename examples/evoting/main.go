// E-voting scenario (paper §1: "a cast vote should not be traceable back
// to the voter"): ballots are submitted through a rerouting network whose
// exit is a threshold mix, and the election authority (the receiver) is
// assumed hostile. The example sizes the path-length strategy so the
// system keeps a target anonymity degree even as more infrastructure nodes
// are compromised, then runs one ballot round end to end on the goroutine
// testbed with onion-encrypted ballots.
//
// Run with: go run ./examples/evoting
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"time"

	"anonmix/internal/core"
	"anonmix/internal/entropy"
	"anonmix/internal/mixbatch"
	"anonmix/internal/onion"
	"anonmix/internal/pathsel"
	"anonmix/internal/simnet"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

const (
	nodes       = 60  // precinct relay nodes
	voters      = 40  // ballots per round
	targetBits  = 5.0 // required sender anonymity (of log2(60) ≈ 5.91)
	meanLatency = 8   // acceptable expected path length
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evoting: ")

	fmt.Printf("E-voting deployment: %d relay nodes, anonymity target %.1f bits (max %.2f)\n\n",
		nodes, targetBits, entropy.Max(nodes))

	// 1. How much compromise can each strategy tolerate?
	fixed, err := pathsel.FixedLength(meanLatency)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Compromise tolerance at mean path length %d:\n", meanLatency)
	fmt.Printf("%-28s", "compromised nodes c:")
	maxC := 6
	for c := 0; c <= maxC; c++ {
		fmt.Printf("%9d", c)
	}
	fmt.Println()

	printRow := func(name string, h func(c int) float64) {
		fmt.Printf("%-28s", name)
		for c := 0; c <= maxC; c++ {
			fmt.Printf("%9.4f", h(c))
		}
		fmt.Println()
	}
	printRow("F(8) fixed", func(c int) float64 {
		sys, err := core.NewSystem(nodes, c)
		if err != nil {
			log.Fatal(err)
		}
		h, err := sys.AnonymityDegree(fixed)
		if err != nil {
			log.Fatal(err)
		}
		return h
	})
	printRow("optimal at mean 8", func(c int) float64 {
		sys, err := core.NewSystem(nodes, c)
		if err != nil {
			log.Fatal(err)
		}
		_, h, err := sys.OptimalStrategy(meanLatency)
		if err != nil {
			log.Fatal(err)
		}
		return h
	})

	// 2. Pick the optimal strategy for the design point c = 3.
	sys, err := core.NewSystem(nodes, 3)
	if err != nil {
		log.Fatal(err)
	}
	strat, h, err := sys.OptimalStrategy(meanLatency)
	if err != nil {
		log.Fatal(err)
	}
	ok := "MEETS"
	if h < targetBits {
		ok = "MISSES"
	}
	fmt.Printf("\nDesign point c=3: optimal strategy achieves %.4f bits → %s the %.1f-bit target\n\n",
		h, ok, targetBits)

	// 3. Run one ballot round on the testbed: onion-encrypted ballots,
	//    three compromised relays, exit mix batching before the authority.
	kr, err := onion.NewKeyRing([]byte("evoting example ring"), nodes)
	if err != nil {
		log.Fatal(err)
	}
	fwd, err := onion.NewForwarder(kr)
	if err != nil {
		log.Fatal(err)
	}
	compromised := []trace.NodeID{5, 23, 41}
	nw, err := simnet.New(simnet.Config{N: nodes, Compromised: compromised, Forwarder: fwd})
	if err != nil {
		log.Fatal(err)
	}
	nw.Start()
	defer nw.Close()

	sel, err := pathsel.NewSelector(nodes, strat)
	if err != nil {
		log.Fatal(err)
	}
	rng := stats.NewRand(2026) //anonlint:allow seedpurity(fixed demo seed keeps the example output reproducible)
	for v := 0; v < voters; v++ {
		voter := trace.NodeID(rng.Intn(nodes))
		path, err := sel.SelectPath(rng, voter)
		if err != nil {
			log.Fatal(err)
		}
		ballot := []byte(fmt.Sprintf("ballot:candidate-%d", rng.Intn(3)))
		if len(path) == 0 {
			// Direct submissions skip the relay fabric entirely.
			if _, err := nw.Inject(voter, trace.Receiver, simnet.Packet{Payload: ballot}); err != nil {
				log.Fatal(err)
			}
			continue
		}
		blob, err := onion.Build(kr, path, ballot, rand.Reader)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := nw.Inject(voter, path[0], simnet.Packet{Onion: blob}); err != nil {
			log.Fatal(err)
		}
	}
	if err := nw.WaitSettled(time.Minute); err != nil {
		log.Fatal(err)
	}

	// 4. The authority-side threshold mix decorrelates arrival order.
	mix, err := mixbatch.NewThreshold(10, 7) //anonlint:allow seedpurity(fixed demo seed keeps the example output reproducible)
	if err != nil {
		log.Fatal(err)
	}
	var published int
	for _, d := range nw.Deliveries() {
		batch, err := mix.Add(mixbatch.Item{Msg: d.Msg, Payload: d.Payload})
		if err != nil {
			log.Fatal(err)
		}
		published += len(batch)
	}
	published += len(mix.Flush())

	fmt.Printf("Ballot round: %d ballots delivered, %d published via threshold mix\n",
		len(nw.Deliveries()), published)
	fmt.Printf("Adversary collected %d relay observations from %d compromised relays\n",
		len(nw.Tuples())-len(nw.Deliveries()), len(compromised))
	fmt.Println("\nConclusion: the optimized variable-length strategy sustains the")
	fmt.Println("anonymity target at the design compromise level, where the fixed-")
	fmt.Println("length strategy of the same latency falls measurably below it.")
}
