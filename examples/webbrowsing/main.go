// Web-browsing scenario (paper §1: "users may generally not want to
// disclose their identities when visiting web sites"): a Crowds-style
// jondo network carries page requests for a day's browsing session while
// two jondos collaborate with the web server. The example runs the
// protocol on the goroutine testbed, shows what the collaborators learn
// message by message, and checks the deployment against the
// probable-innocence condition.
//
// Run with: go run ./examples/webbrowsing
package main

import (
	"fmt"
	"log"
	"time"

	"anonmix/internal/crowds"
	"anonmix/internal/simnet"
	"anonmix/internal/stats"
	"anonmix/internal/trace"
)

const (
	jondos        = 20
	collaborators = 2
	pf            = 0.75
	requests      = 2000
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("webbrowsing: ")

	ok, err := crowds.ProbableInnocence(jondos, collaborators, pf)
	if err != nil {
		log.Fatal(err)
	}
	predProb, err := crowds.PredecessorProb(jondos, collaborators, pf)
	if err != nil {
		log.Fatal(err)
	}
	hEvent, err := crowds.EventEntropy(jondos, collaborators, pf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Crowd: %d jondos, %d collaborating, pf = %.2f\n", jondos, collaborators, pf)
	fmt.Printf("Probable innocence: %v  (first-collaborator predecessor prob %.4f ≤ 0.5 required)\n",
		ok, predProb)
	fmt.Printf("Posterior entropy when a collaborator sees a request: %.4f bits\n\n", hEvent)

	fwd, err := crowds.NewForwarder(jondos, pf, 99) //anonlint:allow seedpurity(fixed demo seed keeps the example output reproducible)
	if err != nil {
		log.Fatal(err)
	}
	comp := make([]trace.NodeID, collaborators)
	for i := range comp {
		comp[i] = trace.NodeID(i)
	}
	nw, err := simnet.New(simnet.Config{N: jondos, Compromised: comp, Forwarder: fwd, Buffer: 8192})
	if err != nil {
		log.Fatal(err)
	}
	nw.Start()
	defer nw.Close()

	// One user (jondo 7) browses; background traffic comes from the rest.
	rng := stats.NewRand(4) //anonlint:allow seedpurity(fixed demo seed keeps the example output reproducible)
	user := trace.NodeID(7)
	senders := make(map[trace.MessageID]trace.NodeID, requests)
	for i := 0; i < requests; i++ {
		sender := user
		if i%4 != 0 { // 3/4 of traffic is from other honest jondos
			sender = trace.NodeID(collaborators + rng.Intn(jondos-collaborators))
		}
		id, err := nw.Inject(sender, fwd.FirstHop(sender), simnet.Packet{
			Payload: []byte("GET /index.html"),
		})
		if err != nil {
			log.Fatal(err)
		}
		senders[id] = sender
	}
	if err := nw.WaitSettled(time.Minute); err != nil {
		log.Fatal(err)
	}

	var observed, sawUserFirst, userRequests, userObserved int
	for id, mt := range trace.Collate(nw.Tuples()) {
		if senders[id] == user {
			userRequests++
		}
		if len(mt.Reports) == 0 {
			continue
		}
		observed++
		if senders[id] == user {
			userObserved++
			if mt.Reports[0].Pred == user {
				sawUserFirst++
			}
		}
	}
	fmt.Printf("Session: %d requests (%d from the tracked user)\n", requests, userRequests)
	fmt.Printf("Requests seen by a collaborator: %d (%.1f%%)\n",
		observed, 100*float64(observed)/float64(requests))
	fmt.Printf("Tracked user's requests seen:    %d, of which %d exposed the user as predecessor\n",
		userObserved, sawUserFirst)
	if userObserved > 0 {
		emp := float64(sawUserFirst) / float64(userObserved)
		fmt.Printf("Empirical predecessor rate for the user: %.4f (closed form %.4f)\n", emp, predProb)
	}
	fmt.Println("\nBecause predecessor appearances are expected for any jondo under")
	fmt.Println("the forwarding rule, the collaborators cannot raise their belief")
	fmt.Println("beyond the probable-innocence bound for any single request.")
}
