// Optimal deployment: sweep the latency budget (expected path length) and
// show, for each budget, how much anonymity the paper's optimal
// distribution buys over the strategies real systems shipped with — the
// engineering takeaway of §6.4 / Figure 6. Also demonstrates the
// inference-strength ablation: how the fixed-length peak moves when the
// adversary gets a position oracle.
//
// Run with: go run ./examples/optimal_deployment
package main

import (
	"fmt"
	"log"

	"anonmix/internal/core"
	"anonmix/internal/dist"
	"anonmix/internal/events"
	"anonmix/internal/pathsel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("optimal_deployment: ")

	const n, c = 100, 1
	sys, err := core.NewSystem(n, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Designing a deployment for N=%d, C=%d (max anonymity %.4f bits)\n\n",
		n, c, sys.MaxAnonymity())

	fmt.Printf("%6s  %12s  %12s  %12s  %14s\n",
		"E[l]", "F(L)", "U(2,2L-2)", "Optimal", "gain vs fixed")
	for _, mean := range []int{3, 5, 8, 10, 15, 20, 30} {
		fx, err := pathsel.FixedLength(mean)
		if err != nil {
			log.Fatal(err)
		}
		hf, err := sys.AnonymityDegree(fx)
		if err != nil {
			log.Fatal(err)
		}
		u, err := pathsel.UniformLength(2, 2*mean-2)
		if err != nil {
			log.Fatal(err)
		}
		hu, err := sys.AnonymityDegree(u)
		if err != nil {
			log.Fatal(err)
		}
		_, hOpt, err := sys.OptimalStrategy(float64(mean))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %12.6f  %12.6f  %12.6f  %+14.6f\n", mean, hf, hu, hOpt, hOpt-hf)
	}

	// The unconstrained optimum: what is achievable if latency is free?
	_, hBest, err := sys.GloballyOptimalStrategy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nUnconstrained optimum: %.6f bits (%.2f%% of log2 N)\n",
		hBest, 100*hBest/sys.MaxAnonymity())

	// Ablation: the long-path-effect peak under stronger adversaries.
	fmt.Println("\nInference-strength ablation (fixed-length peak location):")
	for _, mode := range []events.InferenceMode{
		events.InferenceStandard, events.InferenceHopCount, events.InferenceFullPosition,
	} {
		e, err := events.New(n, c, events.WithInference(mode))
		if err != nil {
			log.Fatal(err)
		}
		bestL, bestH := 0, -1.0
		for l := 1; l <= n-1; l++ {
			f, err := dist.NewFixed(l)
			if err != nil {
				log.Fatal(err)
			}
			h, err := e.AnonymityDegree(f)
			if err != nil {
				log.Fatal(err)
			}
			if h > bestH {
				bestH, bestL = h, l
			}
		}
		fmt.Printf("  %-14s peak at l=%-3d with H* = %.6f bits\n", mode, bestL, bestH)
	}
	fmt.Println("\nStronger inference pulls the optimal path length down sharply —")
	fmt.Println("the paper's qualitative long-path effect is robust, while the exact")
	fmt.Println("peak location depends on the adversary's timing information")
	fmt.Println("(DESIGN.md §2 discusses the reconstruction).")
}
