// Long-term intersection attack (Wright et al., cited as [23] by the
// paper): a whistleblower mails the same journalist repeatedly through the
// rerouting network. Each message leaks a little; the adversary multiplies
// the per-message posteriors from the exact engine and watches the
// whistleblower's anonymity decay round by round. The example compares how
// fast different path-selection strategies give the sender up, and shows
// the Crowds predecessor-counting variant.
//
// Run with: go run ./examples/longterm
package main

import (
	"fmt"
	"log"

	"anonmix/internal/degrade"
	"anonmix/internal/pathsel"
	"anonmix/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("longterm: ")

	const (
		n          = 30
		confidence = 0.90
		maxRounds  = 300
		trials     = 30
	)
	compromised := []trace.NodeID{3, 17, 24}

	fmt.Printf("Repeated communication, N=%d, C=%d, identify at %.0f%% posterior:\n\n",
		n, len(compromised), 100*confidence)
	fmt.Printf("%-14s %14s %14s %34s\n",
		"STRATEGY", "identified", "mean rounds", "mean anonymity (bits) after round")
	fmt.Printf("%-14s %14s %14s %10s %10s %12s\n", "", "", "", "1", "10", "50")

	strategies := []struct {
		name string
		mk   func() (pathsel.Strategy, error)
	}{
		{"F(3) Freedom", func() (pathsel.Strategy, error) { return pathsel.Freedom(), nil }},
		{"F(5) OR-I", func() (pathsel.Strategy, error) { return pathsel.OnionRoutingI(), nil }},
		{"U(1,9)", func() (pathsel.Strategy, error) { return pathsel.UniformLength(1, 9) }},
		{"U(1,19)", func() (pathsel.Strategy, error) { return pathsel.UniformLength(1, 19) }},
	}
	for _, s := range strategies {
		strat, err := s.mk()
		if err != nil {
			log.Fatal(err)
		}
		res, err := degrade.Run(degrade.Config{
			N:           n,
			Compromised: compromised,
			Strategy:    strat,
			Sender:      9,
			Confidence:  confidence,
			MaxRounds:   maxRounds,
			Trials:      trials,
			Seed:        77,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %13.0f%% %14.1f %10.3f %10.3f %12.3f\n",
			s.name, 100*res.IdentifiedShare, res.MeanRounds,
			res.MeanEntropyAfter[0], res.MeanEntropyAfter[9], res.MeanEntropyAfter[49])
	}

	// The Crowds variant: predecessor counting across path reformations.
	fmt.Println("\nCrowds predecessor counting (N=30, C=3, pf=0.75):")
	bound, err := degrade.CrowdsRoundsBound(n, len(compromised), 0.75, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Hoeffding bound: %d observed rounds suffice for 90%% identification\n", bound)
	for _, rounds := range []int{5, 25, 100, 400} {
		res, err := degrade.CrowdsDegradation(n, len(compromised), 0.75, rounds, 300, 21)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d reformations: identified %5.1f%%  (collaborator saw %.1f of them)\n",
			rounds, 100*res.IdentifiedShare, res.MeanObservedRounds)
	}

	fmt.Println("\nTakeaway: single-message anonymity degrees translate directly into")
	fmt.Println("how many messages a sender can afford — strategies that look close")
	fmt.Println("on one message separate by tens of messages in time-to-identification.")
}
