// Quickstart: compute the anonymity degree of a rerouting-based anonymous
// communication system, reproduce the paper's headline observations, and
// derive an optimal path-length strategy.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"anonmix/internal/core"
	"anonmix/internal/pathsel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// The paper's configuration: 100 nodes, one of them compromised (the
	// receiver is always assumed compromised on top).
	sys, err := core.NewSystem(100, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("System: N=%d nodes, C=%d compromised, max anonymity log2(N) = %.4f bits\n\n",
		sys.N(), sys.C(), sys.MaxAnonymity())

	// Anonymity degree of fixed-length strategies: the short-path and
	// long-path effects.
	fmt.Println("Fixed-length strategies F(l):")
	for _, l := range []int{1, 2, 3, 4, 5, 20, 51, 99} {
		strat, err := pathsel.FixedLength(l)
		if err != nil {
			log.Fatal(err)
		}
		h, err := sys.AnonymityDegree(strat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  F(%-2d)  H*(S) = %.6f bits\n", l, h)
	}
	fmt.Println("\nNote F(1) = F(2) > F(3) (short path effect) and the interior")
	fmt.Println("maximum at l=51 followed by decline (long path effect).")

	// A variable-length strategy with the same mean beats the fixed one
	// when its lower bound is small (inequality 18).
	uni, err := pathsel.UniformLength(1, 19)
	if err != nil {
		log.Fatal(err)
	}
	hu, err := sys.AnonymityDegree(uni)
	if err != nil {
		log.Fatal(err)
	}
	fix, err := pathsel.FixedLength(10)
	if err != nil {
		log.Fatal(err)
	}
	hf, err := sys.AnonymityDegree(fix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nVariable vs fixed at mean 10: U(1,19) = %.6f > F(10) = %.6f\n", hu, hf)

	// The paper's optimization problem: the best distribution with mean 10.
	best, h, err := sys.OptimalStrategy(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Optimal strategy at mean 10: H*(S) = %.6f bits (+%.6f over F(10))\n",
		h, h-hf)
	fmt.Printf("  %s\n", best.Length)
}
