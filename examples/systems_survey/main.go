// Systems survey: rank the anonymous communication systems surveyed in §2
// of the paper — Anonymizer, LPWA, Freedom, PipeNet, Onion Routing I, the
// Anonymous Remailer, Crowds, and Onion Routing II — by the anonymity
// degree their path-selection strategies achieve under the paper's threat
// model.
//
// Run with: go run ./examples/systems_survey
package main

import (
	"fmt"
	"log"

	"anonmix/internal/core"
	"anonmix/internal/pathsel"
	"anonmix/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("survey: ")

	const (
		n = 100
		c = 2
	)
	sys, err := core.NewSystem(n, c)
	if err != nil {
		log.Fatal(err)
	}

	remailer, err := pathsel.Remailer(4)
	if err != nil {
		log.Fatal(err)
	}
	crowdsStrat, err := pathsel.Crowds(0.75, n-1)
	if err != nil {
		log.Fatal(err)
	}
	or2, err := pathsel.OnionRoutingII(0.8, n-1)
	if err != nil {
		log.Fatal(err)
	}
	strategies := []pathsel.Strategy{
		pathsel.Anonymizer(),
		pathsel.LPWA(),
		pathsel.Freedom(),
		pathsel.PipeNet(),
		pathsel.OnionRoutingI(),
		remailer,
		crowdsStrat,
		or2,
	}

	// Coin-flip systems have cyclic routes; they are estimated by
	// Monte-Carlo over their length distribution (see DESIGN.md §5).
	compromised := []trace.NodeID{17, 62}
	rows, err := sys.CompareStrategies(strategies, compromised, 60000, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Path-selection strategies of the systems surveyed in §2\n")
	fmt.Printf("System: N=%d, C=%d, receiver compromised; max anonymity %.4f bits\n\n",
		n, c, sys.MaxAnonymity())
	fmt.Printf("%-22s %-14s %9s %10s %8s\n", "SYSTEM", "LENGTHS", "E[l]", "H*(S)", "% of max")
	for _, r := range rows {
		mark := ""
		if r.Estimated {
			mark = fmt.Sprintf(" ±%.3f (MC)", r.CI95)
		}
		fmt.Printf("%-22s %-14s %9.2f %10.5f %7.2f%%%s\n",
			r.Strategy.Name, r.Strategy.Length, r.MeanLength, r.H, 100*r.Normalized, mark)
	}

	fmt.Println("\nObservations (cf. paper §6 and conclusions):")
	fmt.Println(" * Freedom's fixed 3-hop routes sit in the short-path-effect dip:")
	fmt.Println("   even the 1-hop Anonymizer matches or beats them at C=1-2.")
	fmt.Println(" * Longer expected routes (Onion Routing I/II, Crowds with high pf)")
	fmt.Println("   rank higher — until the long-path effect would reverse the trend.")
	fmt.Println(" * None of the surveyed systems uses the optimal distribution the")
	fmt.Println("   paper derives; run ./examples/optimal_deployment to see the gap.")
}
